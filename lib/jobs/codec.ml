open Lamp_relational

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

(* Writing *)

type w = Buffer.t

let writer () = Buffer.create 4096
let contents = Buffer.contents
let w_int b i = Buffer.add_int64_be b (Int64.of_int i)

let w_char = Buffer.add_char
let w_bool b v = Buffer.add_char b (if v then '\001' else '\000')
let w_float b f = Buffer.add_int64_be b (Int64.bits_of_float f)

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_option b f = function
  | None -> w_bool b false
  | Some v ->
    w_bool b true;
    f b v

let w_list b f xs =
  w_int b (List.length xs);
  List.iter (f b) xs

let w_array b f xs =
  w_int b (Array.length xs);
  Array.iter (f b) xs

let w_value b = function
  | Value.Int i ->
    Buffer.add_char b 'i';
    w_int b i
  | Value.Str s ->
    Buffer.add_char b 's';
    w_string b s

let w_fact b f =
  w_string b (Fact.rel f);
  w_array b w_value (Fact.args f)

(* [Instance.facts] enumerates the underlying sorted sets, so equal
   instances yield byte-identical encodings. *)
let w_instance b inst = w_list b w_fact (Instance.facts inst)

(* Reading *)

type r = { buf : string; mutable pos : int }

let reader s = { buf = s; pos = 0 }

(* [String.length r.buf - r.pos] cannot overflow ([pos <= length]),
   whereas [r.pos + n] can when a corrupted length prefix holds a value
   near [max_int] — that overflow used to slip past the bound check and
   surface as an unprotected [String.sub] failure. *)
let need r n =
  if n < 0 || n > String.length r.buf - r.pos then
    corrupt "truncated checkpoint at byte %d (want %d more of %d)" r.pos n
      (String.length r.buf)

let r_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_be r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let r_char r =
  need r 1;
  let c = r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_bool r =
  need r 1;
  let c = r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | '\000' -> false
  | '\001' -> true
  | c -> corrupt "bad bool tag %C at byte %d" c (r.pos - 1)

let r_float r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_be r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let r_string r =
  let n = r_int r in
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_option r f = if r_bool r then Some (f r) else None

(* Every element encoding in this codec occupies at least one byte
   (the cheapest, an empty nested list, costs its 8-byte length
   prefix), so a well-formed collection of [n] elements needs at least
   [n] more bytes. Checking that up front turns a corrupted length
   prefix into {!Corrupt} before [Array.init]/[List.init] try to
   allocate billions of slots. *)
let r_len r =
  let n = r_int r in
  if n < 0 then corrupt "negative length %d at byte %d" n (r.pos - 8);
  if n > String.length r.buf - r.pos then
    corrupt "length %d at byte %d exceeds the %d bytes remaining" n (r.pos - 8)
      (String.length r.buf - r.pos);
  n

let r_list r f = List.init (r_len r) (fun _ -> f r)
let r_array r f = Array.init (r_len r) (fun _ -> f r)

let r_value r =
  need r 1;
  let c = r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | 'i' -> Value.int (r_int r)
  | 's' -> Value.str (r_string r)
  | c -> corrupt "bad value tag %C at byte %d" c (r.pos - 1)

let r_fact r =
  let rel = r_string r in
  Fact.make rel (r_array r r_value)

let r_instance r = Instance.of_facts (r_list r r_fact)

let r_end r =
  if r.pos <> String.length r.buf then
    corrupt "trailing garbage: %d bytes unread after position %d"
      (String.length r.buf - r.pos)
      r.pos
