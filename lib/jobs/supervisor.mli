(** Round-indexed job supervision: checkpoint, kill, resume, rebalance.

    A multi-round algorithm exposes itself as a {!script}: [step k]
    runs round [k+1] given that [k] rounds have completed, [snapshot]
    serializes the whole job state, [restore] rebuilds it. The
    supervisor drives the steps and, after each one, writes a durable
    checkpoint to a {!Store.t}. A run that starts on a store holding a
    checkpoint for its job (and was asked to resume) restores from it
    and continues at the next round — producing output and statistics
    bit-identical to an uninterrupted run, because the checkpoint
    carries everything the remaining rounds read.

    Failure modeling hooks:
    - [kill_after_round = Some k] simulates a process death: the
      supervisor raises {!Killed} immediately after persisting the
      round-[k] checkpoint ([k = 0] dies before any work, leaving an
      initial-state checkpoint).
    - [run ~perma] consults a permanent crash-stop oracle before each
      round; when it reports a dead server the script's [rebalance]
      hook decides the recovery policy — [`Continue] (the script has
      shrunk p→p−1 and redistributed the dead server's checkpointed
      state onto survivors; resume from the current round) or
      [`Restart] (the computation rendezvouses across rounds on a
      p-dependent hash, so the script reset itself to round 0 with the
      survivor count). The crash fires at most once per job, even
      across kill/resume boundaries: the applied rebalance is recorded
      inside the checkpoint envelope.

    Checkpoints are fingerprinted: resuming under a different fault
    plan (or algorithm configuration) than the checkpoint was written
    under raises [Invalid_argument] rather than silently mixing
    incompatible runs.

    Durability is the store's contract, not the supervisor's: a resume
    whose freshest slot is torn or corrupt transparently falls back to
    the previous generation ({!Store.load} verifies before trusting),
    re-running the rounds after it; if no generation verifies at all
    the job restarts from round 0 — in every case converging to output
    bit-identical to an uninterrupted run. *)

exception Killed of { job : string; round : int }
(** The simulated process death: the checkpoint for [round] is on the
    store; rerunning the same job with [resume] continues from it. *)

type outcome = [ `Continue | `Done ]

type script = {
  step : int -> outcome;
      (** [step k] runs round [k+1] (0-indexed: [step 0] is the first
          round). Returns [`Done] when the job is complete — including
          when [k] is at or past the end, so resuming a finished job
          is a no-op. *)
  snapshot : unit -> string;
      (** Serialized job state after the rounds completed so far. *)
  restore : round:int -> string -> unit;
      (** Rebuild the state [snapshot] captured after [round] rounds. *)
  rebalance : round:int -> dead:int -> [ `Continue | `Restart ];
      (** Permanent crash-stop of server [dead] detected before round
          [round]; see the policy discussion above. The script mutates
          its own state and accounts the rebalance traffic in its
          statistics. *)
}

val inline_script :
  step:(int -> outcome) -> snapshot:(unit -> string) ->
  restore:(round:int -> string -> unit) -> script
(** A script whose [rebalance] is [`Continue] with no state change —
    for jobs that never see a permanent crash. *)

type t = {
  store : Store.t;
  job : string;
  mutable fingerprint : string;
      (** Overwritten by supervised entry points with a digest of the
          algorithm name and fault plan before {!run}; hand-written
          scripts may set their own. *)
  mutable kill_after_round : int option;
  mutable resume : bool;
  mutable resumed_from : int option;  (** Set by {!run} when it restored. *)
  mutable checkpoints : int;  (** Checkpoints written by this run. *)
  mutable checkpoint_bytes : int;  (** Total payload bytes written. *)
  mutable rebalanced : (int * int) list;
      (** [(round, dead)] crash-stops this run rebalanced around. *)
}

val create :
  ?fingerprint:string ->
  ?kill_after_round:int ->
  ?resume:bool ->
  store:Store.t ->
  string ->
  t
(** [create ~store job] — a control block for one job run. [resume]
    defaults to [false]: a fresh run clears any stale checkpoint for
    [job] before starting. [fingerprint] (default ["" ]) is stored in
    every checkpoint and verified on resume. *)

val run : ?perma:(round:int -> int option) -> t -> script -> unit
(** Drive [script] under supervision: restore if resuming, then
    step/checkpoint until [`Done]. [perma ~round] reports a server
    permanently crashed before [round] (rounds are 1-indexed here:
    [round = k + 1] when [k] rounds have completed).
    @raise Killed after the configured checkpoint when
    [kill_after_round] is set.
    @raise Invalid_argument on a fingerprint mismatch when resuming. *)

val run_inline : script -> unit
(** Drive the steps with no store, no checkpointing and no failure
    hooks — the zero-cost path every entry point uses when no
    supervisor is attached. *)

val pp_outcome : t Fmt.t
(** One line for CLIs: resumed-from round, checkpoints written and
    rebalanced crashes, e.g.
    ["resumed from round 2; 4 checkpoints (1.2 KiB)"]. *)
