(** Versioned binary codec for checkpoint payloads.

    Hand-rolled rather than [Marshal]: the byte layout is documented,
    stable across compiler versions, and a truncated or corrupted
    checkpoint raises {!Corrupt} instead of segfaulting. All integers
    are 64-bit big-endian; strings and lists are length-prefixed;
    floats are IEEE-754 bit patterns. The encoding of a value is a
    pure function of the value, so two equal snapshots are
    byte-identical — checkpoint comparisons in tests can compare raw
    payloads. *)

exception Corrupt of string
(** Raised by every reader on truncated input, a bad tag byte, or a
    length prefix that overruns the buffer. Decoding malformed bytes
    must never crash, over-read, or over-allocate: length prefixes are
    validated against the bytes actually remaining before any list or
    array is materialized (the wire protocol of [lamp.serve] feeds this
    codec untrusted input). *)

(** {1 Writing} *)

type w

val writer : unit -> w
val contents : w -> string

val w_int : w -> int -> unit
val w_char : w -> char -> unit
val w_bool : w -> bool -> unit
val w_float : w -> float -> unit
val w_string : w -> string -> unit
val w_option : w -> (w -> 'a -> unit) -> 'a option -> unit
val w_list : w -> (w -> 'a -> unit) -> 'a list -> unit
val w_array : w -> (w -> 'a -> unit) -> 'a array -> unit
val w_value : w -> Lamp_relational.Value.t -> unit
val w_fact : w -> Lamp_relational.Fact.t -> unit

val w_instance : w -> Lamp_relational.Instance.t -> unit
(** Facts in canonical (sorted-set) order: equal instances encode to
    equal bytes. *)

(** {1 Reading} *)

type r

val reader : string -> r

val r_int : r -> int
val r_char : r -> char
val r_bool : r -> bool
val r_float : r -> float
val r_string : r -> string
val r_option : r -> (r -> 'a) -> 'a option
val r_list : r -> (r -> 'a) -> 'a list
val r_array : r -> (r -> 'a) -> 'a array
val r_value : r -> Lamp_relational.Value.t
val r_fact : r -> Lamp_relational.Fact.t
val r_instance : r -> Lamp_relational.Instance.t

val r_end : r -> unit
(** Asserts the whole buffer was consumed; raises {!Corrupt} on
    trailing bytes (catches writer/reader schema drift early). *)
