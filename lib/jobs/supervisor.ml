module Trace = Lamp_obs.Trace

exception Killed of { job : string; round : int }

type outcome = [ `Continue | `Done ]

type script = {
  step : int -> outcome;
  snapshot : unit -> string;
  restore : round:int -> string -> unit;
  rebalance : round:int -> dead:int -> [ `Continue | `Restart ];
}

let inline_script ~step ~snapshot ~restore =
  { step; snapshot; restore; rebalance = (fun ~round:_ ~dead:_ -> `Continue) }

type t = {
  store : Store.t;
  job : string;
  mutable fingerprint : string;
  mutable kill_after_round : int option;
  mutable resume : bool;
  mutable resumed_from : int option;
  mutable checkpoints : int;
  mutable checkpoint_bytes : int;
  mutable rebalanced : (int * int) list;
}

let create ?(fingerprint = "") ?kill_after_round ?(resume = false) ~store job =
  {
    store;
    job;
    fingerprint;
    kill_after_round;
    resume;
    resumed_from = None;
    checkpoints = 0;
    checkpoint_bytes = 0;
    rebalanced = [];
  }

(* The stored slot wraps the script payload in an envelope carrying
   the run fingerprint (fault plan + configuration, checked on resume)
   and the rebalances already applied, so a crash-stop repaired before
   a kill is not repaired again after the resume. *)
let encode_envelope fingerprint rebalanced payload =
  let w = Codec.writer () in
  Codec.w_string w fingerprint;
  Codec.w_list w
    (fun w (round, dead) ->
      Codec.w_int w round;
      Codec.w_int w dead)
    rebalanced;
  Codec.w_string w payload;
  Codec.contents w

let decode_envelope raw =
  let r = Codec.reader raw in
  let fingerprint = Codec.r_string r in
  let rebalanced =
    Codec.r_list r (fun r ->
        let round = Codec.r_int r in
        let dead = Codec.r_int r in
        (round, dead))
  in
  let payload = Codec.r_string r in
  Codec.r_end r;
  (fingerprint, rebalanced, payload)

let run_inline script =
  let rec go k = match script.step k with `Continue -> go (k + 1) | `Done -> () in
  go 0

let run ?(perma = fun ~round:_ -> None) t script =
  let applied = ref [] in
  let start =
    if not t.resume then begin
      Store.clear t.store ~job:t.job;
      0
    end
    else
      match Store.load t.store ~job:t.job with
      | None -> 0
      | Some (round, raw) ->
        let fingerprint, rebalanced, payload = decode_envelope raw in
        if fingerprint <> t.fingerprint then
          invalid_arg
            (Printf.sprintf
               "Supervisor.run: checkpoint for job %S was written under \
                configuration %S, resuming under %S"
               t.job fingerprint t.fingerprint);
        applied := rebalanced;
        t.resumed_from <- Some round;
        Trace.instant ~cat:"job"
          ~args:[ ("job", Str t.job); ("round", Int round) ]
          "job.resume";
        script.restore ~round payload;
        round
  in
  let save round =
    let payload =
      Trace.span ~cat:"job"
        ~args:[ ("job", Str t.job); ("round", Int round) ]
        "job.checkpoint" script.snapshot
    in
    Store.save t.store ~job:t.job ~round
      (encode_envelope t.fingerprint !applied payload);
    t.checkpoints <- t.checkpoints + 1;
    t.checkpoint_bytes <- t.checkpoint_bytes + String.length payload;
    if t.kill_after_round = Some round then
      raise (Killed { job = t.job; round })
  in
  if start = 0 && t.kill_after_round = Some 0 then save 0;
  let rec go k =
    let k =
      match perma ~round:(k + 1) with
      | Some dead when !applied = [] ->
        applied := [ (k + 1, dead) ];
        t.rebalanced <- (k + 1, dead) :: t.rebalanced;
        Trace.instant ~cat:"job"
          ~args:
            [ ("job", Str t.job); ("round", Int (k + 1)); ("dead", Int dead) ]
          "job.rebalance";
        (match script.rebalance ~round:(k + 1) ~dead with
        | `Continue ->
          (* re-checkpoint: the post-rebalance state replaces the slot
             so a later resume does not see the pre-crash topology *)
          save k;
          k
        | `Restart ->
          save 0;
          0)
      | _ -> k
    in
    match script.step k with
    | `Continue ->
      save (k + 1);
      go (k + 1)
    | `Done -> save (k + 1)
  in
  go start

let pp_outcome ppf t =
  let pp_bytes ppf b =
    if b >= 1024 then Fmt.pf ppf "%.1f KiB" (float_of_int b /. 1024.)
    else Fmt.pf ppf "%d B" b
  in
  (match t.resumed_from with
  | Some r -> Fmt.pf ppf "resumed from round %d; " r
  | None -> ());
  Fmt.pf ppf "%d checkpoint%s (%a)" t.checkpoints
    (if t.checkpoints = 1 then "" else "s")
    pp_bytes t.checkpoint_bytes;
  List.iter
    (fun (round, dead) ->
      Fmt.pf ppf "; rebalanced after crash of server %d before round %d" dead
        round)
    (List.rev t.rebalanced);
  let fallbacks = Store.fallbacks t.store and swept = Store.swept t.store in
  if fallbacks > 0 then
    Fmt.pf ppf "; recovered %d damaged slot%s from the previous generation"
      fallbacks
      (if fallbacks = 1 then "" else "s");
  if swept > 0 then
    Fmt.pf ppf "; swept %d stale tmp file%s" swept (if swept = 1 then "" else "s")
