let magic = "LAMPCKPT"
let version = 1

type t =
  | Memory of (string, int * string) Hashtbl.t
  | Disk of string

let in_memory () = Memory (Hashtbl.create 8)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let on_disk dir =
  mkdir_p dir;
  Disk dir

let sanitize job =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    job

let slot_path dir job = Filename.concat dir (sanitize job ^ ".ckpt")

let corrupt fmt = Format.kasprintf (fun s -> raise (Codec.Corrupt s)) fmt

let encode_slot ~job ~round payload =
  let w = Codec.writer () in
  Codec.w_string w magic;
  Codec.w_int w version;
  Codec.w_string w job;
  Codec.w_int w round;
  Codec.w_string w payload;
  Codec.contents w

let decode_slot ~job raw =
  let r = Codec.reader raw in
  let m = Codec.r_string r in
  if m <> magic then corrupt "bad checkpoint magic %S" m;
  let v = Codec.r_int r in
  if v <> version then
    corrupt "checkpoint version %d, this build reads %d" v version;
  let j = Codec.r_string r in
  if j <> job then corrupt "checkpoint belongs to job %S, expected %S" j job;
  let round = Codec.r_int r in
  let payload = Codec.r_string r in
  Codec.r_end r;
  (round, payload)

let save t ~job ~round payload =
  match t with
  | Memory tbl -> Hashtbl.replace tbl job (round, payload)
  | Disk dir ->
    let path = slot_path dir job in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (encode_slot ~job ~round payload);
        flush oc);
    Sys.rename tmp path

let load t ~job =
  match t with
  | Memory tbl -> Hashtbl.find_opt tbl job
  | Disk dir ->
    let path = slot_path dir job in
    if not (Sys.file_exists path) then None
    else begin
      let ic = open_in_bin path in
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Some (decode_slot ~job raw)
    end

let clear t ~job =
  match t with
  | Memory tbl -> Hashtbl.remove tbl job
  | Disk dir ->
    let path = slot_path dir job in
    if Sys.file_exists path then Sys.remove path

let pp ppf = function
  | Memory _ -> Fmt.string ppf "memory"
  | Disk dir -> Fmt.pf ppf "disk:%s" dir
