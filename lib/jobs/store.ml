module Trace = Lamp_obs.Trace
module Disk_plan = Lamp_faults.Disk
module Executor = Lamp_runtime.Executor

let magic = "LAMPCKPT"
let version = 2

exception Torn of {
  job : string;
  path : string;
  offset : int;
}

exception Corrupt of {
  job : string;
  path : string;
  reason : string;
}

let swept_counter = Trace.counter "store.tmp_swept"
let fallback_counter = Trace.counter "store.fallbacks"
let lost_counter = Trace.counter "store.lost"

type disk = {
  dir : string;
  io : Io.t;
  gens : (string, int) Hashtbl.t;  (* job -> last generation written *)
  clean : (string, bool) Hashtbl.t;  (* job -> current slot known-good *)
  mutable swept : int;
  mutable fallbacks : int;
  mutable lost : int;
}

type t =
  | Memory of (string, int * string) Hashtbl.t
  | Disk of disk

let in_memory () = Memory (Hashtbl.create 8)

let sanitize job =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    job

let slot_path dir job = Filename.concat dir (sanitize job ^ ".ckpt")
let prev_path dir job = slot_path dir job ^ ".prev"
let tmp_path dir job = slot_path dir job ^ ".tmp"

(* Any file whose name carries the tmp marker is crash litter: the
   real tmp, or the plan's planted stale copies derived from it. *)
let is_tmp_litter name =
  let marker = ".ckpt.tmp" in
  let n = String.length name and m = String.length marker in
  let rec scan i = i + m <= n && (String.sub name i m = marker || scan (i + 1)) in
  scan 0

let sweep d =
  List.iter
    (fun name ->
      if is_tmp_litter name then begin
        Io.remove (Filename.concat d.dir name);
        d.swept <- d.swept + 1;
        Trace.incr swept_counter
      end)
    (Io.list_dir d.dir)

let on_disk ?(faults = Disk_plan.none) dir =
  Io.mkdir_p dir;
  let d =
    {
      dir;
      io = (if Disk_plan.is_none faults then Io.real () else Io.inject faults);
      gens = Hashtbl.create 8;
      clean = Hashtbl.create 8;
      swept = 0;
      fallbacks = 0;
      lost = 0;
    }
  in
  sweep d;
  Disk d

(* ------------------------------------------------------------------ *)
(* Slot format, version 2:

     w_string magic | w_int version | w_int generation
   | w_string job   | w_int round   | w_string payload
   | w_string (MD5 of everything before it)

   The checksum trailer is always 8 (length) + 16 (digest) bytes, so
   the covered body is the slot minus its last 24 bytes. *)

let digest_trailer = 24

let encode_slot ~gen ~job ~round payload =
  let w = Codec.writer () in
  Codec.w_string w magic;
  Codec.w_int w version;
  Codec.w_int w gen;
  Codec.w_string w job;
  Codec.w_int w round;
  Codec.w_string w payload;
  let body = Codec.contents w in
  Codec.w_string w (Digest.string body);
  Codec.contents w

type slot = {
  gen : int;
  job : string;
  round : int;
  payload : string;
}

(* Full validation: structure, magic/version, checksum. [job] is only
   for error reports — the identity check against an expected job name
   is the caller's (it differs between load and fsck). *)
let parse_slot ~job ~path raw =
  let fail reason = raise (Corrupt { job; path; reason }) in
  match
    let r = Codec.reader raw in
    let m = Codec.r_string r in
    let v = Codec.r_int r in
    let gen = Codec.r_int r in
    let j = Codec.r_string r in
    let round = Codec.r_int r in
    let payload = Codec.r_string r in
    let digest = Codec.r_string r in
    Codec.r_end r;
    (m, v, gen, j, round, payload, digest)
  with
  | exception Codec.Corrupt _ ->
    (* The reader ran off the end (or a damaged length prefix overran
       it): the slot is short of what its fields claim. *)
    raise (Torn { job; path; offset = String.length raw })
  | m, v, gen, j, round, payload, digest ->
    if m <> magic then fail (Fmt.str "bad checkpoint magic %S" m);
    if v = 1 then
      fail "checkpoint version 1 (pre-checksum format); this build reads 2";
    if v <> version then
      fail (Fmt.str "checkpoint version %d, this build reads %d" v version);
    (* Checksum before identity: a rotted job field must report as
       corruption, not as a foreign job. *)
    if
      String.length digest <> 16
      || Digest.string (String.sub raw 0 (String.length raw - digest_trailer))
         <> digest
    then fail "checksum mismatch";
    if gen < 1 then fail (Fmt.str "generation %d < 1" gen);
    { gen; job = j; round; payload }

let decode_slot ~job ~path raw =
  let s = parse_slot ~job ~path raw in
  if s.job <> job then
    raise
      (Corrupt
         {
           job;
           path;
           reason = Fmt.str "checkpoint belongs to job %S, expected %S" s.job job;
         });
  s

(* [Some slot] if the file exists and fully verifies as [job]'s. *)
let verified ~job path =
  if not (Io.exists path) then None
  else
    match decode_slot ~job ~path (Io.read_file path) with
    | exception (Torn _ | Corrupt _ | Sys_error _) -> None
    | s -> Some s

(* ------------------------------------------------------------------ *)

let save t ~job ~round payload =
  match t with
  | Memory tbl -> Hashtbl.replace tbl job (round, payload)
  | Disk d ->
    let path = slot_path d.dir job in
    let tmp = tmp_path d.dir job in
    let gen =
      match Hashtbl.find_opt d.gens job with
      | Some g -> g + 1
      | None ->
        (* First save this process: continue after whatever verified
           generation is already on disk. *)
        let best p = match verified ~job p with Some s -> s.gen | None -> 0 in
        1 + max (best path) (best (prev_path d.dir job))
    in
    let raw = encode_slot ~gen ~job ~round payload in
    (* Retain the old slot as the previous generation only when it is
       known good: linking a rotted current over the last good
       fallback would destroy the one copy recovery needs. *)
    let current_ok =
      match Hashtbl.find_opt d.clean job with
      | Some ok -> ok
      | None -> verified ~job path <> None
    in
    let status =
      Executor.with_retry
        ~retryable:(function
          | Io.No_space _ | Unix.Unix_error (Unix.ENOSPC, _, _) -> true
          | _ -> false)
        ~hint:(function
          | Io.No_space { hint_s; _ } -> Some hint_s
          | _ -> None)
        (fun ~attempt ->
          let ctx = { Io.job; round; attempt } in
          Io.write_tmp d.io ~ctx ~path:tmp raw;
          Io.replace d.io ~ctx
            ?prev:(if current_ok then Some (prev_path d.dir job) else None)
            ~tmp ~dst:path ())
    in
    Hashtbl.replace d.gens job gen;
    Hashtbl.replace d.clean job (status = `Intact)

let load t ~job =
  match t with
  | Memory tbl -> Hashtbl.find_opt tbl job
  | Disk d ->
    let accept ~promote (s : slot) raw =
      if promote then begin
        (* The current generation was damaged or missing: put the
           verified previous one back under the slot name, atomically
           and without injection — recovery must not be wedged by the
           plan that made it necessary. *)
        let tmp = tmp_path d.dir job in
        Io.write_tmp d.io ~path:tmp raw;
        ignore (Io.replace d.io ~tmp ~dst:(slot_path d.dir job) ());
        d.fallbacks <- d.fallbacks + 1;
        Trace.incr fallback_counter
      end;
      Hashtbl.replace d.gens job s.gen;
      Hashtbl.replace d.clean job true;
      Some (s.round, s.payload)
    in
    let current = slot_path d.dir job and previous = prev_path d.dir job in
    let read p =
      match if Io.exists p then Some (Io.read_file p) else None with
      | Some raw -> (
        match decode_slot ~job ~path:p raw with
        | s -> `Good (s, raw)
        | exception (Torn _ | Corrupt _) -> `Damaged)
      | None | (exception Sys_error _) -> `Absent
    in
    (match read current with
    | `Good (s, raw) -> accept ~promote:false s raw
    | (`Damaged | `Absent) as c -> (
      match read previous with
      | `Good (s, raw) -> accept ~promote:true s raw
      | `Damaged | `Absent ->
        if c = `Damaged then begin
          (* Slot files exist but nothing verifies: report the job as
             unstarted. Checkpoints are recomputable — the supervisor
             restarts from round 0 and still converges bit-identically
             — but count the loss loudly. *)
          d.lost <- d.lost + 1;
          Trace.incr lost_counter
        end;
        None))

let verify t ~job =
  match t with
  | Memory tbl ->
    Option.map (fun (round, _) -> (0, round)) (Hashtbl.find_opt tbl job)
  | Disk d ->
    let path = slot_path d.dir job in
    if not (Io.exists path) then None
    else
      let s = decode_slot ~job ~path (Io.read_file path) in
      Some (s.gen, s.round)

let clear t ~job =
  match t with
  | Memory tbl -> Hashtbl.remove tbl job
  | Disk d ->
    Io.remove (slot_path d.dir job);
    Io.remove (prev_path d.dir job);
    Io.remove (tmp_path d.dir job);
    Hashtbl.remove d.gens job;
    Hashtbl.remove d.clean job

let pp ppf = function
  | Memory _ -> Fmt.string ppf "memory"
  | Disk d ->
    if Io.plan d.io |> Disk_plan.is_none then Fmt.pf ppf "disk:%s" d.dir
    else Fmt.pf ppf "disk:%s[%a]" d.dir Disk_plan.pp (Io.plan d.io)

let swept = function Memory _ -> 0 | Disk d -> d.swept
let fallbacks = function Memory _ -> 0 | Disk d -> d.fallbacks
let lost = function Memory _ -> 0 | Disk d -> d.lost
let injected = function Memory _ -> [] | Disk d -> Io.injected d.io

(* ------------------------------------------------------------------ *)
(* fsck: offline scan/repair of a checkpoint directory. All I/O is
   plain (never injected) — fsck is the recovery tool. *)

type report = {
  file : string;
  kind : [ `Slot | `Previous | `Tmp ];
  verdict :
    [ `Ok of int * int | `Torn of int | `Corrupt of string | `Stale ];
  action : [ `None | `Swept | `Promoted | `Pruned | `Flagged ];
}

(* Validate one slot file, including that it sits under the file name
   its stored job name sanitizes to — a slot copied under the wrong
   name must not pass. *)
let file_verdict dir ~expect_base name =
  let path = Filename.concat dir name in
  match Io.read_file path with
  | exception Sys_error _ -> `Corrupt "unreadable"
  | raw -> (
    match parse_slot ~job:"" ~path raw with
    | exception Torn { offset; _ } -> `Torn offset
    | exception Corrupt { reason; _ } -> `Corrupt reason
    | s ->
      if sanitize s.job ^ ".ckpt" <> expect_base then
        `Corrupt (Fmt.str "slot claims job %S, filed under %S" s.job name)
      else `Ok (s.gen, s.round))

let fsck ?(repair = false) dir =
  let entries = Io.list_dir dir in
  let reports =
    List.filter_map
      (fun name ->
        let path = Filename.concat dir name in
        if is_tmp_litter name then begin
          let action =
            if repair then begin
              Io.remove path;
              `Swept
            end
            else `None
          in
          Some { file = name; kind = `Tmp; verdict = `Stale; action }
        end
        else if Filename.check_suffix name ".ckpt.prev" then
          let base = Filename.chop_suffix name ".prev" in
          Some
            {
              file = name;
              kind = `Previous;
              verdict = file_verdict dir ~expect_base:base name;
              action = `None;
            }
        else if Filename.check_suffix name ".ckpt" then
          Some
            {
              file = name;
              kind = `Slot;
              verdict = file_verdict dir ~expect_base:name name;
              action = `None;
            }
        else None)
      entries
  in
  if not repair then reports
  else begin
    (* Pair each slot with its previous generation and decide repairs:
       promote a good prev over a bad (or missing) slot, prune a bad
       prev behind a good slot, and never delete a sole survivor. *)
    let ok r = match r.verdict with `Ok _ -> true | _ -> false in
    let find kind base =
      List.find_opt
        (fun r ->
          r.kind = kind
          && (match kind with
             | `Previous -> r.file = base ^ ".prev"
             | _ -> r.file = base))
        reports
    in
    let promote base =
      let tmp = Filename.concat dir (base ^ ".tmp") in
      let raw = Io.read_file (Filename.concat dir (base ^ ".prev")) in
      let io = Io.real () in
      Io.write_tmp io ~path:tmp raw;
      ignore (Io.replace io ~tmp ~dst:(Filename.concat dir base) ())
    in
    List.map
      (fun r ->
        match r.kind with
        | `Tmp -> r
        | `Slot -> (
          if ok r then r
          else
            match find `Previous r.file with
            | Some p when ok p ->
              promote r.file;
              { r with action = `Promoted }
            | _ -> { r with action = `Flagged })
        | `Previous -> (
          let base = Filename.chop_suffix r.file ".prev" in
          match find `Slot base with
          | Some s when ok s ->
            if ok r then r
            else begin
              Io.remove (Filename.concat dir r.file);
              { r with action = `Pruned }
            end
          | Some _ when ok r ->
            (* The slot is bad; this prev is about to be promoted over
               it — keep it. *)
            r
          | None when ok r ->
            (* No current slot at all: restore it from here. *)
            promote base;
            { r with action = `Promoted }
          | _ -> { r with action = `Flagged }))
      reports
  end

let healthy reports =
  List.for_all
    (fun r ->
      match (r.verdict, r.action) with
      | `Ok _, _ -> true
      | _, (`Swept | `Promoted | `Pruned) -> true
      | _ -> false)
    reports

let pp_report ppf r =
  let kind =
    match r.kind with `Slot -> "slot" | `Previous -> "prev" | `Tmp -> "tmp"
  in
  let verdict ppf = function
    | `Ok (gen, round) -> Fmt.pf ppf "ok (generation %d, round %d)" gen round
    | `Torn offset -> Fmt.pf ppf "torn (%d bytes present)" offset
    | `Corrupt reason -> Fmt.pf ppf "corrupt: %s" reason
    | `Stale -> Fmt.string ppf "stale tmp litter"
  in
  let action ppf = function
    | `None -> ()
    | `Swept -> Fmt.string ppf " [swept]"
    | `Promoted -> Fmt.string ppf " [promoted previous generation]"
    | `Pruned -> Fmt.string ppf " [pruned]"
    | `Flagged -> Fmt.string ppf " [UNREPAIRABLE]"
  in
  Fmt.pf ppf "%-6s %s: %a%a" kind r.file verdict r.verdict action r.action
