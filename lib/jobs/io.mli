(** The filesystem shim every disk access of {!Store} goes through.

    [real] is a transparent passthrough with the full fsync
    discipline: slot bytes are fsynced before the rename and the
    containing directory after it, so a power loss can no longer
    resurrect the old slot or leave an empty one. [inject] wraps the
    same operations in a {!Lamp_faults.Disk} plan: torn writes,
    lost renames, bit rot, short slots, [ENOSPC] and stale tmp litter
    fire deterministically at the plan's drawn coordinates, against
    real files — so the recovery path is exercised by the actual
    syscall sequence, not a mock.

    Injection applies only to slot saves carrying a {!ctx} (a job's
    checkpoint write); recovery writes — promoting a fallback
    generation, repairs by fsck — pass no context and are never
    faulted, so recovery cannot be wedged by the plan that made it
    necessary. *)

exception Crashed of {
  job : string;
  round : int;
  point : string;
}
(** The simulated power cut of a [crash=] plan: the save died at this
    point, leaving the filesystem exactly as a real crash would (torn
    or complete tmp litter, the previous slot restored). The process is
    expected to stop and resume from the store — like
    [Supervisor.Killed], but mid-write instead of between rounds. *)

exception No_space of {
  path : string;
  hint_s : float;
}
(** The simulated [ENOSPC]: the write attempt failed after a partial
    write. [hint_s] is the suggested floor for the retry sleep (the
    store retries through [Runtime.Executor.with_retry ~hint]). *)

type ctx = {
  job : string;
  round : int;
  attempt : int;  (** 1-based write attempt, for [ENOSPC] retries. *)
}
(** Coordinates a slot save passes so the plan can draw its faults. *)

type t

val real : unit -> t
(** The passthrough shim: no plan, nothing injected. *)

val inject : Lamp_faults.Disk.t -> t
(** A shim applying the plan's decisions. [inject Disk.none] behaves
    as {!real}. *)

val plan : t -> Lamp_faults.Disk.t

val injected : t -> (string * int) list
(** Sorted [(fault, count)] of faults actually applied so far —
    ["torn"], ["pre-rename"], ["post-rename"], ["rot"], ["truncate"],
    ["enospc"], ["litter"]. *)

(** {1 Operations} *)

val mkdir_p : string -> unit
val exists : string -> bool
val list_dir : string -> string list
(** Entries of the directory, sorted; [] if it does not exist. *)

val remove : string -> unit
(** Idempotent unlink: missing files are not an error. *)

val read_file : string -> string
(** Whole-file read. Reads are never injected — they see whatever the
    (possibly faulted) writes left on disk. *)

val write_tmp : t -> ?ctx:ctx -> path:string -> string -> unit
(** Writes [path] in full and fsyncs it. Under a plan (and a [ctx]):
    may plant stale tmp litter next to it, fail the attempt with
    {!No_space} after a partial write, or die mid-write with
    {!Crashed} (a torn, unsynced [path] remains). *)

val replace :
  t -> ?ctx:ctx -> ?prev:string -> tmp:string -> dst:string -> unit ->
  [ `Intact | `Damaged ]
(** Atomically renames [tmp] over [dst], fsyncing the containing
    directory before and after; when [prev] is given and [dst] exists,
    the old [dst] is first retained at [prev] (the previous
    generation). Under a plan: {!Crashed} may fire before the rename
    (complete tmp litter, [dst] untouched) or "after" it (the rename is
    undone — the directory update was lost — and [tmp] reappears);
    the just-renamed slot may be bit-rotted or truncated in place, in
    which case [`Damaged] is returned so the store knows the current
    generation is not to be trusted as a fallback. *)
