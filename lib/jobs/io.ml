(* The filesystem shim between Store and the OS. All slot traffic goes
   through here so a Faults.Disk plan can turn the syscall sequence
   hostile — torn writes, lost renames, bit rot, ENOSPC — against real
   files, deterministically. Without a plan it is the plain fsync'd
   write/rename discipline. *)

module Disk = Lamp_faults.Disk

exception Crashed of {
  job : string;
  round : int;
  point : string;
}

exception No_space of {
  path : string;
  hint_s : float;
}

type ctx = {
  job : string;
  round : int;
  attempt : int;
}

type t = {
  plan : Disk.t;
  lock : Mutex.t;
  counts : (string, int) Hashtbl.t;
}

let make plan = { plan; lock = Mutex.create (); counts = Hashtbl.create 8 }
let real () = make Disk.none
let inject plan = make plan
let plan t = t.plan

let count t kind =
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.counts kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts kind)))

let injected t =
  Mutex.protect t.lock (fun () ->
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []))

(* How long an injected ENOSPC asks the retry loop to wait: long
   enough to be a real sleep, short enough that a chaos matrix of
   hundreds of saves stays fast. *)
let enospc_hint_s = 0.0005

(* ------------------------------------------------------------------ *)
(* Plain operations (never injected). *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let exists = Sys.file_exists

let list_dir dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    List.sort compare (Array.to_list (Sys.readdir dir))
  else []

let remove path =
  try Sys.remove path with Sys_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec write_bytes fd b i len =
  if len > 0 then begin
    match Unix.write fd b i len with
    | n -> write_bytes fd b (i + n) (len - n)
    | exception Unix.Unix_error (EINTR, _, _) -> write_bytes fd b i len
  end

(* [fsync] on a directory fd is how rename durability is actually
   obtained on POSIX; some filesystems refuse it (EINVAL), which is
   the best we can do there. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error (_, _, _) -> ())

(* Write [prefix_len] bytes of [contents] to [path]; fsync only when
   asked — a torn write is precisely one that was never synced. *)
let write_raw ?(fsync = true) path contents prefix_len =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_bytes fd (Bytes.unsafe_of_string contents) 0 prefix_len;
      if fsync then Unix.fsync fd)

(* ------------------------------------------------------------------ *)
(* Injection points. *)

let faults_for t = function
  | Some { job; round; _ } when not (Disk.is_none t.plan) ->
    Disk.save t.plan ~job ~round
  | _ -> Disk.no_save_faults

let write_tmp t ?ctx ~path contents =
  let faults = faults_for t ctx in
  let len = String.length contents in
  if faults.litter then begin
    (* A previous crash's leftover: a half-written tmp next to the
       slot, to be swept — its name keeps the ".tmp" marker. *)
    let stale =
      path ^ "." ^ string_of_int (match ctx with Some c -> c.round | None -> 0)
    in
    write_raw ~fsync:false stale contents (len / 2);
    count t "litter"
  end;
  (match (faults.crash, ctx) with
  | Some (Disk.Torn_write f), Some { job; round; _ } ->
    (* The power cut lands mid-write: a prefix of the slot reaches the
       file, nothing is synced, and the process dies. *)
    let torn = int_of_float (f *. float_of_int len) in
    write_raw ~fsync:false path contents (min torn len);
    count t "torn";
    raise (Crashed { job; round; point = Fmt.str "torn:%g" f })
  | _ -> ());
  (match ctx with
  | Some { attempt; _ } when attempt <= faults.enospc_failures ->
    (* Disk full after a partial write; the caller's retry loop gets a
       sleep hint, and a later attempt finds space. *)
    write_raw ~fsync:false path contents (len / 2);
    count t "enospc";
    raise (No_space { path; hint_s = enospc_hint_s })
  | _ -> ());
  write_raw path contents len

let crash_at t ctx point_name =
  match ctx with
  | Some { job; round; _ } ->
    count t point_name;
    raise (Crashed { job; round; point = point_name })
  | None -> assert false (* crashes only fire under a ctx *)

(* Retain the old slot as the previous generation. Same directory, so
   a hard link is a metadata-only operation; fall back to a copy on
   filesystems without link support. *)
let retain ~dst ~prev =
  remove prev;
  try Unix.link dst prev
  with Unix.Unix_error (_, _, _) ->
    let data = read_file dst in
    write_raw prev data (String.length data)

let replace t ?ctx ?prev ~tmp ~dst () =
  let faults = faults_for t ctx in
  let crash point = faults.crash = Some point && ctx <> None in
  if crash Disk.Before_rename then
    (* Died after the tmp was complete but before the rename: the slot
       directory still names the old generation. *)
    crash_at t ctx "pre-rename";
  (match prev with
  | Some prev when exists dst -> retain ~dst ~prev
  | _ -> ());
  fsync_dir (Filename.dirname dst);
  if crash Disk.After_rename then begin
    (* The rename was issued, but the power cut lost the directory
       update (the fsync-lie / rename-lost case): on "reboot" the old
       slot is back and the new bytes survive only as tmp litter. *)
    let old = if exists dst then Some (read_file dst) else None in
    let fresh = read_file tmp in
    Unix.rename tmp dst;
    (match old with
    | Some old -> write_raw ~fsync:false dst old (String.length old)
    | None -> remove dst);
    write_raw ~fsync:false tmp fresh (String.length fresh);
    crash_at t ctx "post-rename"
  end;
  Unix.rename tmp dst;
  let damaged = ref false in
  (match faults.rot_at with
  | Some (frac, mask) ->
    (* Bit rot on the just-written slot: one byte XORed in place. *)
    let raw = read_file dst in
    let len = String.length raw in
    if len > 0 then begin
      let j = min (len - 1) (int_of_float (frac *. float_of_int (len - 1))) in
      let b = Bytes.of_string raw in
      Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lxor mask land 0xff));
      write_raw ~fsync:false dst (Bytes.unsafe_to_string b) len;
      damaged := true;
      count t "rot"
    end
  | None -> ());
  (match faults.truncate_at with
  | Some frac ->
    let len =
      try (Unix.stat dst).Unix.st_size with Unix.Unix_error (_, _, _) -> 0
    in
    if len > 1 then begin
      let keep = max 1 (int_of_float (frac *. float_of_int len)) in
      (try Unix.truncate dst (min keep (len - 1))
       with Unix.Unix_error (_, _, _) -> ());
      damaged := true;
      count t "truncate"
    end
  | None -> ());
  fsync_dir (Filename.dirname dst);
  if !damaged then `Damaged else `Intact
