(* The collector. Design constraints, in order:

   1. Off-path cost: every public recording function begins with one
      [Atomic.get] of [enabled] and returns on [false] — no clock
      read, no allocation, no lock. Call sites in engine hot loops
      additionally hoist that check out of their inner loops (see
      Cq.Plan.fold), so the disabled cost there is literally zero.
   2. Multi-domain safety: counters and histogram buckets are plain
      atomics (worker domains of the pool backend record concurrently);
      the event buffer takes a mutex per append — events are emitted at
      phase/round granularity, far off any hot path.
   3. Read-only: nothing here reaches back into the instrumented
      structures; recording can never perturb results. *)

type arg =
  | Int of int
  | Float of float
  | Str of string

type event =
  | Span of {
      name : string;
      cat : string;
      tid : int;
      t : float;
      dur : float;
      args : (string * arg) list;
    }
  | Instant of {
      name : string;
      cat : string;
      tid : int;
      t : float;
      args : (string * arg) list;
    }
  | Sample of {
      name : string;
      cat : string;
      tid : int;
      t : float;
      value : float;
    }

let enabled = Atomic.make false
let is_enabled () = Atomic.get enabled

let now () = Unix.gettimeofday ()

(* Trace clock anchor: timestamps are seconds since the last
   [set_enabled true] / [reset], so exported traces start near 0. *)
let t_zero = Atomic.make 0.0

let mutex = Mutex.create ()
let recorded : event list ref = ref []

(* Event buffer mode. [Full] appends every event to an unbounded list —
   right for batch runs that export once at exit. [Ring n] keeps only
   the newest [n] events in a circular buffer — right for a long-lived
   server that is scraped while it runs and must not grow without
   bound. Counters and histograms are unaffected by the mode. *)
type mode =
  | Full
  | Ring of int

let mode = ref Full
let ring : event option array ref = ref [||]
let ring_pos = ref 0
let ring_len = ref 0

let set_mode m =
  Mutex.protect mutex (fun () ->
      mode := m;
      (match m with
      | Full -> ring := [||]
      | Ring cap -> ring := Array.make (max 1 cap) None);
      ring_pos := 0;
      ring_len := 0)

let tid () = (Domain.self () :> int)

let push e =
  Mutex.protect mutex (fun () ->
      match !mode with
      | Full -> recorded := e :: !recorded
      | Ring _ ->
        let r = !ring in
        r.(!ring_pos) <- Some e;
        ring_pos := (!ring_pos + 1) mod Array.length r;
        if !ring_len < Array.length r then incr ring_len)

(* Ring contents, oldest first. Caller holds [mutex]. *)
let ring_events () =
  let r = !ring and n = !ring_len in
  let cap = Array.length r in
  List.init n (fun i ->
      match r.((!ring_pos - n + i + cap + cap) mod cap) with
      | Some e -> e
      | None -> assert false)

let rel t = t -. Atomic.get t_zero

let set_enabled b =
  if b && not (Atomic.get enabled) then Atomic.set t_zero (now ());
  Atomic.set enabled b

let emit_span ?(cat = "") ?(args = []) ~name ~t0 ~dur () =
  if is_enabled () then
    push (Span { name; cat; tid = tid (); t = rel t0; dur; args })

let span ?(cat = "") ?(args = []) name f =
  if not (is_enabled ()) then f ()
  else begin
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        push
          (Span
             { name; cat; tid = tid (); t = rel t0; dur = now () -. t0; args }))
      f
  end

let instant ?(cat = "") ?(args = []) name =
  if is_enabled () then
    push (Instant { name; cat; tid = tid (); t = rel (now ()); args })

let sample ?(cat = "") name value =
  if is_enabled () then
    push (Sample { name; cat; tid = tid (); t = rel (now ()); value })

let events () =
  Mutex.protect mutex (fun () ->
      match !mode with
      | Full -> List.rev !recorded
      | Ring _ -> ring_events ())

let recent ?(limit = max_int) () =
  Mutex.protect mutex (fun () ->
      let evs =
        match !mode with
        | Full ->
          (* [recorded] is newest first: take the head, restore order. *)
          let rec take n = function
            | e :: rest when n > 0 -> e :: take (n - 1) rest
            | _ -> []
          in
          List.rev (take limit !recorded)
        | Ring _ -> ring_events ()
      in
      let n = List.length evs in
      if n <= limit then evs
      else
        (* drop the oldest [n - limit] *)
        let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l) in
        drop (n - limit) evs)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

type counter = {
  c_name : string;
  c : int Atomic.t;
}

let counter_registry : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt counter_registry name with
      | Some c -> c
      | None ->
        let c = { c_name = name; c = Atomic.make 0 } in
        Hashtbl.add counter_registry name c;
        c)

let add c n = if is_enabled () then ignore (Atomic.fetch_and_add c.c n)
let incr c = add c 1
let value c = Atomic.get c.c

let counters ?(all = false) () =
  Mutex.protect mutex (fun () ->
      Hashtbl.fold
        (fun name c acc ->
          let v = Atomic.get c.c in
          if v = 0 && not all then acc else (name, v) :: acc)
        counter_registry [])
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

(* Bucket i holds values v with 2^(i-1) <= v < 2^i (bucket 0: v = 0),
   i.e. the bucket index is the bit length of the value. 64 buckets
   cover every OCaml int. *)
let nbuckets = 64

type histogram = {
  h_name : string;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
  h_buckets : int Atomic.t array;
}

let histogram_registry : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt histogram_registry name with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0;
            h_max = Atomic.make 0;
            h_buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
          }
        in
        Hashtbl.add histogram_registry name h;
        h)

let bit_length v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let observe h v =
  if is_enabled () then begin
    let v = max 0 v in
    ignore (Atomic.fetch_and_add h.h_count 1);
    ignore (Atomic.fetch_and_add h.h_sum v);
    atomic_max h.h_max v;
    ignore (Atomic.fetch_and_add h.h_buckets.(bit_length v) 1)
  end

type histogram_snapshot = {
  count : int;
  sum : int;
  max_value : int;
  buckets : (int * int) list;
}

let histogram_snapshot h =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    let c = Atomic.get h.h_buckets.(i) in
    if c > 0 then
      (* Inclusive upper bound of bucket i: 2^i - 1 (bucket 0 holds
         only 0). *)
      buckets := ((1 lsl i) - 1, c) :: !buckets
  done;
  {
    count = Atomic.get h.h_count;
    sum = Atomic.get h.h_sum;
    max_value = Atomic.get h.h_max;
    buckets = !buckets;
  }

(* Rank-based percentile with linear interpolation inside the winning
   power-of-two bucket. Bucket [ub] spans [lo .. min ub max_value] where
   [lo] is [0] for the zero bucket and [(ub + 1) / 2] otherwise;
   clamping the top bucket to [max_value] keeps p99 from overshooting
   the largest value ever observed. Exact for q = 0 (min bucket lower
   bound) and q = 1 (max_value); within a factor of 2 elsewhere, which
   is the resolution the histogram stores. *)
let percentile s q =
  if s.count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int s.count in
    let rec find seen = function
      | [] -> float_of_int s.max_value
      | (ub, c) :: rest ->
        let seen = seen + c in
        if float_of_int seen >= rank && c > 0 then begin
          let lo = if ub = 0 then 0 else (ub + 1) / 2 in
          let hi = min ub s.max_value in
          let frac =
            (rank -. float_of_int (seen - c)) /. float_of_int c
          in
          float_of_int lo +. (frac *. float_of_int (hi - lo))
        end
        else find seen rest
    in
    find 0 s.buckets
  end

let histograms ?(all = false) () =
  Mutex.protect mutex (fun () ->
      Hashtbl.fold
        (fun name h acc ->
          if Atomic.get h.h_count = 0 && not all then acc
          else (name, histogram_snapshot h) :: acc)
        histogram_registry [])
  |> List.sort compare

let reset () =
  Mutex.protect mutex (fun () ->
      recorded := [];
      Array.fill !ring 0 (Array.length !ring) None;
      ring_pos := 0;
      ring_len := 0;
      Hashtbl.iter (fun _ c -> Atomic.set c.c 0) counter_registry;
      Hashtbl.iter
        (fun _ h ->
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0;
          Atomic.set h.h_max 0;
          Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
        histogram_registry);
  Atomic.set t_zero (now ())

(* Silence unused-field warnings: names are read by Export via the
   registries, not through the records. *)
let _ = fun (c : counter) (h : histogram) -> (c.c_name, h.h_name)
