(** lamp.obs — zero-cost-when-off observability.

    One process-wide collector gathers three kinds of signal:

    - {e events}: wall-clock {!span}s, point-in-time {!instant}s and
      numeric {!sample} series, appended to a mutex-protected buffer
      with the recording domain's id attached;
    - {e counters}: named monotone integers backed by a single atomic
      each, so worker domains of the [pool] backend can record without
      a lock;
    - {e histograms}: power-of-two-bucketed value distributions, every
      bucket an atomic.

    Everything is gated on one flag: while {!is_enabled} is [false],
    every recording entry point is a single atomic load and a branch —
    no allocation, no lock, no time-stamping. Instrumentation must be
    read-only on the instrumented program: enabling tracing never
    changes query outputs or [Mpc.Stats.t] (the determinism suite in
    [test/test_obs.ml] enforces this).

    Exporters for the collected state — Chrome [trace_event] JSON for
    Perfetto, JSONL, console report — live in {!Export}. *)

(** {1 Master switch} *)

val set_enabled : bool -> unit
(** Turning tracing on also (re)anchors the trace clock: timestamps of
    later events are relative to this moment. *)

val is_enabled : unit -> bool
val reset : unit -> unit
(** Drops all recorded events and zeroes every counter and histogram
    (the registries keep their entries). Safe from any domain. *)

(** How recorded events are buffered. [Full] (the default) appends to
    an unbounded list, exported once at exit — the batch/bench shape.
    [Ring n] keeps only the newest [n] events in a circular buffer, so
    a long-lived server can run with tracing on and be scraped live
    (the [trace] wire op) without growing without bound. Counters and
    histograms are unaffected by the mode. *)
type mode =
  | Full
  | Ring of int

val set_mode : mode -> unit
(** Switching modes drops previously buffered events. *)

val now : unit -> float
(** Wall-clock seconds (for metering regions by hand). *)

(** {1 Events} *)

type arg =
  | Int of int
  | Float of float
  | Str of string

type event =
  | Span of {
      name : string;
      cat : string;
      tid : int;  (** recording domain id *)
      t : float;  (** seconds since the trace clock anchor *)
      dur : float;  (** seconds *)
      args : (string * arg) list;
    }
  | Instant of {
      name : string;
      cat : string;
      tid : int;
      t : float;
      args : (string * arg) list;
    }
  | Sample of {
      name : string;
      cat : string;
      tid : int;
      t : float;
      value : float;  (** rendered as a Perfetto counter track *)
    }

val span : ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; when enabled, records how long it took.
    The span is recorded even when [f] raises. When disabled this is
    [f ()] plus one atomic load. *)

val emit_span :
  ?cat:string -> ?args:(string * arg) list -> name:string -> t0:float ->
  dur:float -> unit -> unit
(** Record an already-measured span ([t0] in {!now}'s clock). No-op
    when disabled. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
val sample : ?cat:string -> string -> float -> unit

val events : unit -> event list
(** Recorded events, oldest first. In [Ring] mode, the ring contents. *)

val recent : ?limit:int -> unit -> event list
(** The newest [limit] events, oldest first — the bounded answer a
    live scrape wants regardless of buffer mode. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Get-or-create by name; creation is synchronized, the returned
    handle is shared. *)

val incr : counter -> unit
(** No-op while disabled; one atomic add otherwise. *)

val add : counter -> int -> unit
val value : counter -> int
val counters : ?all:bool -> unit -> (string * int) list
(** Registered counters sorted by name. Zero-valued entries are hidden
    by default; [~all:true] includes them — scrape endpoints must emit
    zeros so rates reset cleanly across restarts. *)

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
(** Get-or-create by name, same registry discipline as {!counter}. *)

val observe : histogram -> int -> unit
(** Record a (non-negative) value into its power-of-two bucket. No-op
    while disabled. *)

type histogram_snapshot = {
  count : int;
  sum : int;
  max_value : int;
  buckets : (int * int) list;
      (** (inclusive upper bound, count) for each non-empty bucket,
          smallest bound first. *)
}

val histogram_snapshot : histogram -> histogram_snapshot
val histograms : ?all:bool -> unit -> (string * histogram_snapshot) list
(** Registered histograms sorted by name. Empty ones are hidden by
    default; [~all:true] includes them (see {!counters}). *)

val percentile : histogram_snapshot -> float -> float
(** [percentile s q] estimates the [q]-quantile ([q] clamped to
    [\[0, 1\]]) of the observed values by linear interpolation inside
    the power-of-two bucket holding the rank, clamped above by
    [max_value]. [percentile s 1.0 = max_value]; an empty snapshot
    yields [0.]. Accuracy is bounded by the bucket width — within a
    factor of 2 of the true quantile, which is plenty for the p50/p95/
    p99 latency fields the bench writer reports. *)
