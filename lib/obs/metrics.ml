(* The metrics registry: the live-telemetry layer over Trace's atomic
   counters and histograms.

   Trace (PR 3) is a batch collector — record everything, export once
   at exit. This module adds what a *running* server needs to be
   scraped while it works:

   - gauges: current-value signals. Settable gauges are one atomic
     store (cheap enough to keep unconditionally accurate); callback
     gauges are evaluated only at snapshot time, so "sessions
     connected" or "uptime" cost nothing between scrapes.
   - labeled families: counters/histograms fanned out by label values,
     rendered into the Trace registries as [name{k="v"}] cells so one
     reset/snapshot path covers them.
   - snapshots and sliding windows: a [snapshot] captures every
     counter, gauge and histogram at one instant (zeros included — a
     scraper must see a counter exist before it moves); a [window] is
     a ring of snapshots supporting per-window rates and quantiles by
     subtracting the oldest snapshot from the newest.

   Everything here is read-only on the instrumented program and safe
   from any domain: the registries reuse Trace's mutex discipline, and
   window state takes its own lock. *)

(* ------------------------------------------------------------------ *)
(* Help/type metadata, read by the OpenMetrics expositor.              *)

type kind =
  | Counter
  | Gauge
  | Histogram

let meta_mutex = Mutex.create ()
let help_registry : (string, string) Hashtbl.t = Hashtbl.create 32
let kind_registry : (string, kind) Hashtbl.t = Hashtbl.create 32

let describe ?help ?kind name =
  Mutex.protect meta_mutex (fun () ->
      (match help with
      | Some h -> Hashtbl.replace help_registry name h
      | None -> ());
      match kind with
      | Some k -> Hashtbl.replace kind_registry name k
      | None -> ())

let help name =
  Mutex.protect meta_mutex (fun () -> Hashtbl.find_opt help_registry name)

let kind name =
  Mutex.protect meta_mutex (fun () -> Hashtbl.find_opt kind_registry name)

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)

type gauge = {
  g_name : string;
  g : int Atomic.t;
}

let gauge_mutex = Mutex.create ()
let gauge_registry : (string, gauge) Hashtbl.t = Hashtbl.create 16
let callback_registry : (string, unit -> float) Hashtbl.t = Hashtbl.create 16

let gauge name =
  Mutex.protect gauge_mutex (fun () ->
      match Hashtbl.find_opt gauge_registry name with
      | Some g -> g
      | None ->
        let g = { g_name = name; g = Atomic.make 0 } in
        Hashtbl.add gauge_registry name g;
        g)

(* Unconditional: a gauge write is one atomic store with no allocation,
   and a stale gauge is worse than a cheap one — the scrape endpoints
   must reflect current state even if the caller never enabled event
   tracing. *)
let set g v = Atomic.set g.g v
let gauge_value g = Atomic.get g.g

let register_callback name f =
  Mutex.protect gauge_mutex (fun () ->
      Hashtbl.replace callback_registry name f)

let unregister_callback name =
  Mutex.protect gauge_mutex (fun () -> Hashtbl.remove callback_registry name)

let gauges () =
  let settable =
    Mutex.protect gauge_mutex (fun () ->
        Hashtbl.fold
          (fun name g acc -> (name, float_of_int (Atomic.get g.g)) :: acc)
          gauge_registry [])
  in
  (* Callbacks are evaluated outside the registry lock: they may read
     state protected by their owner's locks (e.g. the serve layer), and
     holding ours across foreign code invites ordering trouble. *)
  let callbacks =
    Mutex.protect gauge_mutex (fun () ->
        Hashtbl.fold (fun name f acc -> (name, f) :: acc) callback_registry [])
  in
  let called =
    List.map
      (fun (name, f) ->
        (name, match f () with v -> v | exception _ -> Float.nan))
      callbacks
  in
  List.sort compare (settable @ called)

(* ------------------------------------------------------------------ *)
(* Labeled families                                                    *)

(* A family fans one metric name out by label values. Cells live in the
   Trace registries under the rendered name [base{k="v",...}], so
   Trace.reset, Trace.counters ~all and the expositor all see them with
   no extra bookkeeping here. *)

let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels name labels =
  match labels with
  | [] -> name
  | _ ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf name;
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}';
    Buffer.contents buf

(* Splits a rendered cell name back into (base, labels-part). The
   labels part keeps its braces: ["f{k=\"v\"}"] -> [("f", "{k=\"v\"}")]. *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, "")
  | Some i ->
    (String.sub name 0 i, String.sub name i (String.length name - i))

type 'a family = {
  fam_name : string;
  fam_cell : string -> 'a;
}

let counter_family ?help:h name =
  describe ?help:h ~kind:Counter name;
  { fam_name = name; fam_cell = Trace.counter }

let histogram_family ?help:h name =
  describe ?help:h ~kind:Histogram name;
  { fam_name = name; fam_cell = Trace.histogram }

let cell fam labels = fam.fam_cell (render_labels fam.fam_name labels)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type snapshot = {
  at : float;  (** {!Trace.now} at capture *)
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Trace.histogram_snapshot) list;
}

let snapshot () =
  {
    at = Trace.now ();
    counters = Trace.counters ~all:true ();
    gauges = gauges ();
    histograms = Trace.histograms ~all:true ();
  }

(* Windowed view of a histogram: newer minus older, bucket by bucket.
   Negative differences (a reset between the two snapshots) clamp to
   zero rather than going nonsensical. max_value cannot be windowed
   from bucket data; the newer snapshot's max is kept as the bound. *)
let snapshot_diff ~(newer : Trace.histogram_snapshot)
    ~(older : Trace.histogram_snapshot) : Trace.histogram_snapshot =
  let older_count ub =
    match List.assoc_opt ub older.buckets with Some c -> c | None -> 0
  in
  let buckets =
    List.filter_map
      (fun (ub, c) ->
        let d = c - older_count ub in
        if d > 0 then Some (ub, d) else None)
      newer.buckets
  in
  {
    count = max 0 (newer.count - older.count);
    sum = max 0 (newer.sum - older.sum);
    max_value = newer.max_value;
    buckets;
  }

(* ------------------------------------------------------------------ *)
(* Sliding windows                                                     *)

type window = {
  w_mutex : Mutex.t;
  slots : snapshot option array;  (* circular, oldest overwritten *)
  mutable w_pos : int;
  mutable w_len : int;
}

let window ?(slots = 60) () =
  {
    w_mutex = Mutex.create ();
    slots = Array.make (max 2 slots) None;
    w_pos = 0;
    w_len = 0;
  }

let push w s =
  Mutex.protect w.w_mutex (fun () ->
      w.slots.(w.w_pos) <- Some s;
      w.w_pos <- (w.w_pos + 1) mod Array.length w.slots;
      if w.w_len < Array.length w.slots then w.w_len <- w.w_len + 1)

let tick w =
  let s = snapshot () in
  push w s;
  s

let length w = Mutex.protect w.w_mutex (fun () -> w.w_len)

let nth_back w i =
  (* i = 0 is the newest slot. Caller holds w_mutex. *)
  let cap = Array.length w.slots in
  w.slots.((w.w_pos - 1 - i + (2 * cap)) mod cap)

let ends w =
  Mutex.protect w.w_mutex (fun () ->
      if w.w_len < 2 then None
      else
        match (nth_back w (w.w_len - 1), nth_back w 0) with
        | Some oldest, Some newest -> Some (oldest, newest)
        | _ -> None)

let span w =
  match ends w with
  | Some (oldest, newest) -> Float.max 0.0 (newest.at -. oldest.at)
  | None -> 0.0

let counter_of s name =
  match List.assoc_opt name s.counters with Some v -> v | None -> 0

let delta w name =
  match ends w with
  | Some (oldest, newest) ->
    max 0 (counter_of newest name - counter_of oldest name)
  | None -> 0

let rate w name =
  match ends w with
  | Some (oldest, newest) ->
    let dt = newest.at -. oldest.at in
    if dt <= 0.0 then 0.0 else float_of_int (delta w name) /. dt
  | None -> 0.0

let hist_delta w name =
  match ends w with
  | Some (oldest, newest) -> (
    match
      ( List.assoc_opt name newest.histograms,
        List.assoc_opt name oldest.histograms )
    with
    | Some n, Some o -> Some (snapshot_diff ~newer:n ~older:o)
    | Some n, None -> Some n
    | _ -> None)
  | None -> None

let quantile w name q =
  match hist_delta w name with
  | Some s when s.count > 0 -> Trace.percentile s q
  | _ -> 0.0
