(** Exporters for the state collected by {!Trace}.

    Three formats:

    - {e Chrome [trace_event]} ([write_chrome]): a JSON object with a
      [traceEvents] array — load it at [ui.perfetto.dev] (or
      [chrome://tracing]). Spans become ["X"] complete events on the
      recording domain's track, instants become ["i"] events, samples
      and final counter values become ["C"] counter tracks.
    - {e JSONL} ([write_jsonl]): one self-describing JSON object per
      line — every line has ["type"] and ["name"] fields — for ad-hoc
      [jq]/pandas analysis and for CI schema validation.
    - {e console} ([pp_report]): spans aggregated by name, counters,
      histograms; the [--profile] output of the CLI. *)

val write_chrome : string -> unit
(** Write the full collected state to [path] in Chrome trace-event
    format. Timestamps are microseconds since the trace clock anchor. *)

val write_jsonl : string -> unit

val pp_report : Format.formatter -> unit -> unit

(** {1 OpenMetrics / Prometheus text exposition} *)

val openmetrics : unit -> string
(** A Prometheus-scrapable snapshot of the whole registry: every
    {!Trace} counter ([lamp_<name>_total], zeros included) and
    histogram (cumulative [_bucket{le="..."}]/[_sum]/[_count] over the
    power-of-two bounds), every {!Metrics} gauge (settable and
    callback), labeled family cells with their labels re-attached,
    [# HELP]/[# TYPE] headers from {!Metrics.describe}, the latest
    {!Sketch} skew report as [lamp_skew_*] gauges and
    [lamp_skew_top{rank,key}] entries, and a final [# EOF]. Metric
    names are sanitized to [a-zA-Z0-9_:] and prefixed [lamp_]. *)

val write_openmetrics : string -> unit

val parse_openmetrics :
  string -> (string * (string * string) list * float) list
(** Parse exposition text back into [(name, labels, value)] samples —
    comments skipped, malformed lines dropped. Enough to read
    {!openmetrics} output (it's what [lamp top] runs on each poll). *)

val om_name : string -> string
(** The exposition name for a registry name: [om_name "serve.qps"] =
    ["lamp_serve_qps"]. *)

(** {1 Metrics JSON}

    The bench harness's machine-readable results file: experiment
    groups of named numbers plus a flat metadata header. Lives here so
    the JSON rendering (escaping, layout) is shared with the trace
    exporters instead of hand-rolled at the call site. *)

type meta =
  | Mstr of string
  | Mint of int
  | Mbool of bool

val write_metrics_json :
  string ->
  meta:(string * meta) list ->
  groups:(string * (string * float) list) list ->
  unit
