(** Live metrics registry — the scrapeable layer over {!Trace}.

    {!Trace} is a batch collector: counters and histograms accumulate
    and are exported once at exit. This module adds what a running
    server needs to be observed {e while it works}:

    - {e gauges}: current-value signals, either settable (one atomic
      store) or computed by a callback at snapshot time;
    - {e labeled families}: one metric name fanned out by label
      values, each cell a plain {!Trace} counter/histogram registered
      under the rendered name [name{k="v"}];
    - {e snapshots} and {e sliding windows}: a consistent capture of
      every counter/gauge/histogram (zeros included), and a ring of
      such captures supporting per-window rates and quantiles —
      exactly the arithmetic [lamp top] and the OpenMetrics scrape
      path need.

    Everything is read-only on the instrumented program and safe from
    any domain. The OpenMetrics text exposition lives in
    {!Export.openmetrics}. *)

(** {1 Metadata} *)

type kind =
  | Counter
  | Gauge
  | Histogram

val describe : ?help:string -> ?kind:kind -> string -> unit
(** Attach HELP text and/or a TYPE to a metric name; the expositor
    emits both. Idempotent, last write wins. *)

val help : string -> string option
val kind : string -> kind option

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
(** Get-or-create by name, {!Trace.counter} registry discipline. *)

val set : gauge -> int -> unit
(** One atomic store, {e not} gated on {!Trace.is_enabled}: a gauge
    must reflect current state whenever it is scraped. *)

val gauge_value : gauge -> int

val register_callback : string -> (unit -> float) -> unit
(** A gauge computed on demand: evaluated (outside registry locks) at
    each {!snapshot}/{!gauges} call, never between. A raising callback
    yields [nan] rather than killing the scrape. *)

val unregister_callback : string -> unit

val gauges : unit -> (string * float) list
(** All settable and callback gauges, sorted by name. *)

(** {1 Labeled families} *)

type 'a family

val counter_family : ?help:string -> string -> Trace.counter family
val histogram_family : ?help:string -> string -> Trace.histogram family

val cell : 'a family -> (string * string) list -> 'a
(** [cell fam labels] is the family member for these label values —
    a plain {!Trace} counter/histogram named [name{k="v",...}].
    Get-or-create; call sites should bind cells once, not per event. *)

val render_labels : string -> (string * string) list -> string
val split_labels : string -> string * string
(** [split_labels "f{k=\"v\"}"] = [("f", "{k=\"v\"}")]; a plain name
    yields [(name, "")]. Used by the expositor to re-attach labels. *)

(** {1 Snapshots} *)

type snapshot = {
  at : float;  (** {!Trace.now} at capture *)
  counters : (string * int) list;  (** every counter, zeros included *)
  gauges : (string * float) list;
  histograms : (string * Trace.histogram_snapshot) list;
}

val snapshot : unit -> snapshot

val snapshot_diff :
  newer:Trace.histogram_snapshot ->
  older:Trace.histogram_snapshot ->
  Trace.histogram_snapshot
(** Bucket-wise difference — the histogram of observations that landed
    between the two captures. Negative diffs (a reset in between)
    clamp to zero; [max_value] is the newer snapshot's. *)

(** {1 Sliding windows} *)

type window
(** A ring of {!snapshot}s. Rates and quantiles are computed between
    the oldest and newest captures still in the ring, so with
    one-second ticks and [slots = 60] every reading is a trailing
    60-second view. *)

val window : ?slots:int -> unit -> window
(** [slots] defaults to 60 and is clamped to at least 2. *)

val tick : window -> snapshot
(** Capture a snapshot, push it (evicting the oldest when full), and
    return it. *)

val length : window -> int
val span : window -> float
(** Seconds between the oldest and newest captures; [0.] until two. *)

val delta : window -> string -> int
(** Counter increase across the window ([0] until two captures). *)

val rate : window -> string -> float
(** [delta / span] per second; [0.] until two captures. *)

val hist_delta : window -> string -> Trace.histogram_snapshot option
val quantile : window -> string -> float -> float
(** Quantile of the observations that landed {e within} the window
    (via {!snapshot_diff} + {!Trace.percentile}); [0.] when empty. *)
