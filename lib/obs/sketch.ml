(* One-pass data statistics over interned ids — the sampled-statistics
   substrate the adaptive-skew roadmap item needs, packaged as
   observability so recording can never perturb results.

   Three classic summaries, all deterministic (fixed seeds, no global
   randomness) so runs are reproducible and the accuracy tests can pin
   exact bounds:

   - Count-Min: frequency estimates with one-sided error
     (estimate >= truth, estimate <= truth + eps * total w.h.p.);
   - SpaceSaving: top-k heavy hitters with per-entry overestimate
     bounds;
   - Reservoir: a uniform sample of a stream of unknown length.

   Sketches are built by the coordinating thread after a round's data
   is merged (never inside parallel workers), so the structures here
   are deliberately plain mutable state with no atomics.

   Recording is gated on a master switch separate from Trace's: a
   server wants cheap per-round skew reports without paying for event
   tracing, and a bench wants tracing without sketch overhead. Off
   cost is the same discipline as Trace: one atomic load + branch. *)

let enabled = Atomic.make false
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

(* Ambient producer label: the algorithm driving the cluster sets it
   ("hypercube", "kst", ...) so per-round reports name their producer
   without threading a label through every Cluster entry point. *)
let context_label = Atomic.make "mpc"
let set_context l = Atomic.set context_label l
let context () = Atomic.get context_label

(* ------------------------------------------------------------------ *)
(* Deterministic mixing                                                *)

(* splitmix-style finalizer over OCaml's 63-bit ints; constants kept
   under 2^62. Quality is far beyond what CM's pairwise-independence
   analysis needs in practice. *)
let mix seed x =
  let h = (x + 0x9E3779B9) * ((seed lsl 1) lor 1) in
  let h = h lxor (h lsr 31) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x3C79AC492BA7B653 in
  let h = h lxor (h lsr 32) in
  h land max_int

(* ------------------------------------------------------------------ *)
(* Count-Min                                                           *)

module Cm = struct
  type t = {
    width : int;
    depth : int;
    epsilon : float;
    seeds : int array;
    rows : int array array;
    mutable total : int;
  }

  let create ?(epsilon = 0.01) ?(delta = 0.02) ?(seed = 0x5eed) () =
    let epsilon = Float.max 1e-6 epsilon in
    let delta = Float.max 1e-9 (Float.min 0.5 delta) in
    let width = max 2 (int_of_float (Float.ceil (Float.exp 1.0 /. epsilon))) in
    let depth = max 1 (int_of_float (Float.ceil (Float.log (1.0 /. delta)))) in
    {
      width;
      depth;
      epsilon;
      seeds = Array.init depth (fun i -> mix seed (i + 1));
      rows = Array.make_matrix depth width 0;
      total = 0;
    }

    let width t = t.width
    let depth t = t.depth
    let epsilon t = t.epsilon
    let total t = t.total

  let add t ?(count = 1) id =
    t.total <- t.total + count;
    for r = 0 to t.depth - 1 do
      let j = mix t.seeds.(r) id mod t.width in
      t.rows.(r).(j) <- t.rows.(r).(j) + count
    done

  let estimate t id =
    let est = ref max_int in
    for r = 0 to t.depth - 1 do
      let j = mix t.seeds.(r) id mod t.width in
      if t.rows.(r).(j) < !est then est := t.rows.(r).(j)
    done;
    if !est = max_int then 0 else !est

  (* The additive error CM guarantees w.h.p.: eps * total, rounded up. *)
  let error_bound t =
    int_of_float (Float.ceil (t.epsilon *. float_of_int t.total))
end

(* ------------------------------------------------------------------ *)
(* SpaceSaving top-k                                                   *)

module Topk = struct
  type entry = {
    mutable count : int;
    mutable err : int;  (* the evicted count this entry inherited *)
  }

  type t = {
    capacity : int;
    table : (int, entry) Hashtbl.t;
  }

  let create ?(capacity = 16) () =
    let capacity = max 1 capacity in
    { capacity; table = Hashtbl.create (2 * capacity) }

  let offer t ?(count = 1) id =
    match Hashtbl.find_opt t.table id with
    | Some e -> e.count <- e.count + count
    | None ->
      if Hashtbl.length t.table < t.capacity then
        Hashtbl.add t.table id { count; err = 0 }
      else begin
        (* Evict the minimum-count entry; the newcomer inherits its
           count (the classic SpaceSaving overestimate). Ties break on
           the smaller id so runs are deterministic. *)
        let min_id = ref (-1) and min_e = ref None in
        Hashtbl.iter
          (fun id' e ->
            match !min_e with
            | None ->
              min_id := id';
              min_e := Some e
            | Some m ->
              if e.count < m.count || (e.count = m.count && id' < !min_id)
              then begin
                min_id := id';
                min_e := Some e
              end)
          t.table;
        match !min_e with
        | None -> Hashtbl.add t.table id { count; err = 0 }
        | Some m ->
          Hashtbl.remove t.table !min_id;
          Hashtbl.add t.table id { count = m.count + count; err = m.count }
      end

  let top t k =
    Hashtbl.fold (fun id e acc -> (id, e.count, e.err) :: acc) t.table []
    |> List.sort (fun (id1, c1, _) (id2, c2, _) ->
           if c1 <> c2 then compare c2 c1 else compare id1 id2)
    |> List.filteri (fun i _ -> i < k)
end

(* ------------------------------------------------------------------ *)
(* Reservoir sampling                                                  *)

module Reservoir = struct
  type t = {
    capacity : int;
    seed : int;
    items : int array;
    mutable seen : int;
  }

  let create ?(seed = 0x5eed) ~capacity () =
    let capacity = max 1 capacity in
    { capacity; seed; items = Array.make capacity 0; seen = 0 }

  let offer t id =
    if t.seen < t.capacity then t.items.(t.seen) <- id
    else begin
      (* Algorithm R with a deterministic per-step mix: item [seen]
         replaces a slot with probability capacity / (seen + 1). *)
      let j = mix t.seed t.seen mod (t.seen + 1) in
      if j < t.capacity then t.items.(j) <- id
    end;
    t.seen <- t.seen + 1

  let seen t = t.seen

  let contents t =
    Array.to_list (Array.sub t.items 0 (min t.seen t.capacity))
end

(* ------------------------------------------------------------------ *)
(* Skew reports                                                        *)

type report = {
  label : string;
  round : int;
  p : int;
  m : int;
  threshold : int;
  top : (string * int) list;
  rels : (string * int) list;
  est_max_load : int;
  max_received : int;
  total_received : int;
  error_bound : int;
}

let report_capacity = 64
let reports_mutex = Mutex.create ()
let report_ring : report option array = Array.make report_capacity None
let report_pos = ref 0
let report_len = ref 0
let report_seq = ref 0

let record r =
  Mutex.protect reports_mutex (fun () ->
      report_ring.(!report_pos) <- Some r;
      report_pos := (!report_pos + 1) mod report_capacity;
      if !report_len < report_capacity then incr report_len;
      incr report_seq)

let reports () =
  Mutex.protect reports_mutex (fun () ->
      List.init !report_len (fun i ->
          match
            report_ring.((!report_pos - !report_len + i + (2 * report_capacity))
                         mod report_capacity)
          with
          | Some r -> r
          | None -> assert false))

let latest () =
  Mutex.protect reports_mutex (fun () ->
      if !report_len = 0 then None
      else
        report_ring.((!report_pos - 1 + report_capacity) mod report_capacity))

let report_count () = Mutex.protect reports_mutex (fun () -> !report_seq)

let reset () =
  Mutex.protect reports_mutex (fun () ->
      Array.fill report_ring 0 report_capacity None;
      report_pos := 0;
      report_len := 0;
      report_seq := 0)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>skew[%s] round %d: p=%d m=%d threshold=%d est_max_load=%d \
     measured_max=%d (+/-%d)@,"
    r.label r.round r.p r.m r.threshold r.est_max_load r.max_received
    r.error_bound;
  List.iteri
    (fun i (key, est) ->
      Format.fprintf ppf "  top%d %s ~%d@," (i + 1) key est)
    r.top;
  List.iter
    (fun (rel, n) -> Format.fprintf ppf "  rel %s %d@," rel n)
    r.rels;
  Format.fprintf ppf "@]"
