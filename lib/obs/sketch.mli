(** One-pass data statistics over interned ids.

    The sampled-statistics substrate for adaptive skew handling,
    packaged as observability: sketches are built by the coordinating
    thread from data it already holds, never reach back into the
    computation, and cost one atomic load + branch when disabled — the
    [Mpc.Stats.t] bit-identity suite runs with sketches on to prove
    it.

    All three summaries are deterministic (fixed seeds): identical
    inputs give identical sketches on every backend, which is what
    lets the accuracy tests pin exact bounds.

    Per-round {!report}s — top-k heavy keys and the load estimate they
    imply, versus the measured per-server loads — are kept in a small
    ring, scraped live via the serve layer's [metrics] op and rendered
    by [lamp top]. *)

(** {1 Master switch}

    Separate from {!Trace}'s: a server wants per-round skew reports
    without paying for event tracing, a bench wants the reverse. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val set_context : string -> unit
(** Ambient producer label for subsequent {!report}s (["hypercube"],
    ["kst"], …; default ["mpc"]). Set by the algorithm driving the
    cluster. *)

val context : unit -> string

val mix : int -> int -> int
(** [mix seed x]: the deterministic 63-bit mixing hash the sketches
    use, exposed for tests. *)

(** {1 Count-Min}

    Frequency estimates in [width * depth] counters. One-sided error:
    [estimate >= truth] always, and [estimate <= truth +
    epsilon * total] with probability [1 - delta] (per query). *)

module Cm : sig
  type t

  val create : ?epsilon:float -> ?delta:float -> ?seed:int -> unit -> t
  (** [width = ceil(e / epsilon)] (default eps 0.01 -> 272 columns),
      [depth = ceil(ln (1 / delta))] (default delta 0.02 -> 4 rows). *)

  val add : t -> ?count:int -> int -> unit
  val estimate : t -> int -> int
  val total : t -> int
  val width : t -> int
  val depth : t -> int
  val epsilon : t -> float

  val error_bound : t -> int
  (** [ceil (epsilon * total)] — the additive slack the estimates carry
      w.h.p.; the accuracy bench records estimates against it. *)
end

(** {1 SpaceSaving top-k}

    [capacity] monitored entries. Any id with true count >
    [total / capacity] is guaranteed present; each reported count
    overestimates truth by at most its [err] component. *)

module Topk : sig
  type t

  val create : ?capacity:int -> unit -> t
  val offer : t -> ?count:int -> int -> unit

  val top : t -> int -> (int * int * int) list
  (** [(id, estimated count, overestimate bound)], highest first; ties
      break on the smaller id, so output is deterministic. *)
end

(** {1 Reservoir sampling} *)

module Reservoir : sig
  type t

  val create : ?seed:int -> capacity:int -> unit -> t
  val offer : t -> int -> unit
  val seen : t -> int
  val contents : t -> int list
  (** The current sample, at most [capacity] items. *)
end

(** {1 Skew reports} *)

type report = {
  label : string;  (** producing algorithm: ["hypercube"], ["kst"], … *)
  round : int;
  p : int;  (** servers *)
  m : int;  (** input facts (the paper's m) *)
  threshold : int;  (** heavy-hitter cut, [Skew.default_threshold] *)
  top : (string * int) list;  (** top keys with estimated degrees *)
  rels : (string * int) list;  (** facts delivered per relation *)
  est_max_load : int;
      (** the load the sketch predicts a perfect key-partition would
          still suffer: [max (ceil (m/p)) (top-1 degree estimate)] *)
  max_received : int;  (** measured max per-server load this round *)
  total_received : int;
  error_bound : int;  (** the CM additive slack on the estimates *)
}

val record : report -> unit
(** Push into a bounded ring (newest 64 kept). *)

val reports : unit -> report list
(** Ring contents, oldest first. *)

val latest : unit -> report option
val report_count : unit -> int
(** Total reports ever recorded (survives ring eviction). *)

val reset : unit -> unit
val pp_report : Format.formatter -> report -> unit
