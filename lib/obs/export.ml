(* Serialization of Trace's collected state. All JSON is emitted
   through the small helpers below — one escaping routine, one number
   formatter — so every exporter agrees on the details. *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no infinities or NaN; clamp to null-ish sentinels. *)
let add_json_float buf f =
  if Float.is_nan f then Buffer.add_string buf "0"
  else if f = Float.infinity then Buffer.add_string buf "1e308"
  else if f = Float.neg_infinity then Buffer.add_string buf "-1e308"
  else Buffer.add_string buf (Printf.sprintf "%.3f" f)

let add_arg buf (k, v) =
  add_json_string buf k;
  Buffer.add_char buf ':';
  match v with
  | Trace.Int i -> Buffer.add_string buf (string_of_int i)
  | Trace.Float f -> add_json_float buf f
  | Trace.Str s -> add_json_string buf s

let add_args buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      add_arg buf a)
    args;
  Buffer.add_char buf '}'

let us t = 1e6 *. t

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event format                                           *)

let chrome_event buf e =
  (match e with
  | Trace.Span { name; cat; tid; t; dur; args } ->
    Buffer.add_string buf "{\"name\":";
    add_json_string buf name;
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf (if cat = "" then "lamp" else cat);
    Buffer.add_string buf ",\"ph\":\"X\",\"ts\":";
    add_json_float buf (us t);
    Buffer.add_string buf ",\"dur\":";
    add_json_float buf (us dur);
    Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" tid);
    if args <> [] then begin
      Buffer.add_string buf ",\"args\":";
      add_args buf args
    end
  | Trace.Instant { name; cat; tid; t; args } ->
    Buffer.add_string buf "{\"name\":";
    add_json_string buf name;
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf (if cat = "" then "lamp" else cat);
    Buffer.add_string buf ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    add_json_float buf (us t);
    Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" tid);
    if args <> [] then begin
      Buffer.add_string buf ",\"args\":";
      add_args buf args
    end
  | Trace.Sample { name; cat; tid = _; t; value } ->
    Buffer.add_string buf "{\"name\":";
    add_json_string buf name;
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf (if cat = "" then "lamp" else cat);
    Buffer.add_string buf ",\"ph\":\"C\",\"ts\":";
    add_json_float buf (us t);
    Buffer.add_string buf ",\"pid\":1,\"args\":{\"value\":";
    add_json_float buf value;
    Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let chrome_buffer () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit e =
    if !first then first := false else Buffer.add_string buf ",\n";
    chrome_event buf e
  in
  let events = Trace.events () in
  List.iter emit events;
  (* Final counter and histogram values, as counter points at the end
     of the trace so they render as flat tracks with the totals. *)
  let t_end =
    List.fold_left
      (fun acc e ->
        match e with
        | Trace.Span { t; dur; _ } -> Float.max acc (t +. dur)
        | Trace.Instant { t; _ } | Trace.Sample { t; _ } -> Float.max acc t)
      0.0 events
  in
  List.iter
    (fun (name, v) ->
      emit
        (Trace.Sample
           { name; cat = "counter"; tid = 0; t = t_end; value = float_of_int v }))
    (Trace.counters ());
  List.iter
    (fun (name, (s : Trace.histogram_snapshot)) ->
      emit
        (Trace.Instant
           {
             name;
             cat = "histogram";
             tid = 0;
             t = t_end;
             args =
               [
                 ("count", Trace.Int s.count);
                 ("sum", Trace.Int s.sum);
                 ("max", Trace.Int s.max_value);
               ]
               @ List.map
                   (fun (ub, c) -> ("le_" ^ string_of_int ub, Trace.Int c))
                   s.buckets;
           }))
    (Trace.histograms ());
  Buffer.add_string buf "]}\n";
  buf

let write_chrome path =
  with_out path (fun oc -> Buffer.output_buffer oc (chrome_buffer ()))

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)

let jsonl_line buf e =
  (match e with
  | Trace.Span { name; cat; tid; t; dur; args } ->
    Buffer.add_string buf "{\"type\":\"span\",\"name\":";
    add_json_string buf name;
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf cat;
    Buffer.add_string buf (Printf.sprintf ",\"tid\":%d,\"ts_us\":" tid);
    add_json_float buf (us t);
    Buffer.add_string buf ",\"dur_us\":";
    add_json_float buf (us dur);
    Buffer.add_string buf ",\"args\":";
    add_args buf args
  | Trace.Instant { name; cat; tid; t; args } ->
    Buffer.add_string buf "{\"type\":\"instant\",\"name\":";
    add_json_string buf name;
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf cat;
    Buffer.add_string buf (Printf.sprintf ",\"tid\":%d,\"ts_us\":" tid);
    add_json_float buf (us t);
    Buffer.add_string buf ",\"args\":";
    add_args buf args
  | Trace.Sample { name; cat; tid; t; value } ->
    Buffer.add_string buf "{\"type\":\"sample\",\"name\":";
    add_json_string buf name;
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf cat;
    Buffer.add_string buf (Printf.sprintf ",\"tid\":%d,\"ts_us\":" tid);
    add_json_float buf (us t);
    Buffer.add_string buf ",\"value\":";
    add_json_float buf value);
  Buffer.add_string buf "}\n"

let write_jsonl path =
  with_out path (fun oc ->
      let buf = Buffer.create 65536 in
      List.iter (jsonl_line buf) (Trace.events ());
      List.iter
        (fun (name, v) ->
          Buffer.add_string buf "{\"type\":\"counter\",\"name\":";
          add_json_string buf name;
          Buffer.add_string buf (Printf.sprintf ",\"value\":%d}\n" v))
        (Trace.counters ());
      List.iter
        (fun (name, (s : Trace.histogram_snapshot)) ->
          Buffer.add_string buf "{\"type\":\"histogram\",\"name\":";
          add_json_string buf name;
          Buffer.add_string buf
            (Printf.sprintf ",\"count\":%d,\"sum\":%d,\"max\":%d,\"buckets\":["
               s.count s.sum s.max_value);
          List.iteri
            (fun i (ub, c) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf (Printf.sprintf "[%d,%d]" ub c))
            s.buckets;
          Buffer.add_string buf "]}\n")
        (Trace.histograms ());
      Buffer.output_buffer oc buf)

(* ------------------------------------------------------------------ *)
(* Console report                                                      *)

let pp_report ppf () =
  let spans = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (function
      | Trace.Span { name; dur; _ } ->
        (match Hashtbl.find_opt spans name with
        | Some (n, total) -> Hashtbl.replace spans name (n + 1, total +. dur)
        | None ->
          order := name :: !order;
          Hashtbl.add spans name (1, dur))
      | _ -> ())
    (Trace.events ());
  if !order <> [] then begin
    Fmt.pf ppf "spans (aggregated by name):@.";
    List.iter
      (fun name ->
        let n, total = Hashtbl.find spans name in
        Fmt.pf ppf "  %-40s %8d calls %12.2f ms total %10.3f ms/call@." name n
          (1000.0 *. total)
          (1000.0 *. total /. float_of_int n))
      (List.rev !order)
  end;
  (match Trace.counters () with
  | [] -> ()
  | cs ->
    Fmt.pf ppf "counters:@.";
    List.iter (fun (name, v) -> Fmt.pf ppf "  %-40s %12d@." name v) cs);
  match Trace.histograms () with
  | [] -> ()
  | hs ->
    Fmt.pf ppf "histograms:@.";
    List.iter
      (fun (name, (s : Trace.histogram_snapshot)) ->
        Fmt.pf ppf "  %-40s count %8d mean %10.1f max %10d@." name s.count
          (if s.count = 0 then 0.0
           else float_of_int s.sum /. float_of_int s.count)
          s.max_value)
      hs

(* ------------------------------------------------------------------ *)
(* Metrics JSON (bench results file)                                   *)

type meta =
  | Mstr of string
  | Mint of int
  | Mbool of bool

let write_metrics_json path ~meta ~groups =
  with_out path (fun oc ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf "{\n";
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf "  ";
          add_json_string buf k;
          Buffer.add_string buf ": ";
          (match v with
          | Mstr s -> add_json_string buf s
          | Mint i -> Buffer.add_string buf (string_of_int i)
          | Mbool b -> Buffer.add_string buf (string_of_bool b));
          Buffer.add_string buf ",\n")
        meta;
      Buffer.add_string buf "  \"experiments\": {\n";
      List.iteri
        (fun i (name, metrics) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf "    ";
          add_json_string buf name;
          Buffer.add_string buf ": {\n";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_string buf ",\n";
              Buffer.add_string buf "      ";
              add_json_string buf k;
              Buffer.add_string buf ": ";
              add_json_float buf v)
            metrics;
          Buffer.add_string buf "\n    }")
        groups;
      Buffer.add_string buf "\n  }\n}\n";
      Buffer.output_buffer oc buf)
