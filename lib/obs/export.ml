(* Serialization of Trace's collected state. All JSON is emitted
   through the small helpers below — one escaping routine, one number
   formatter — so every exporter agrees on the details. *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no infinities or NaN; clamp to null-ish sentinels. *)
let add_json_float buf f =
  if Float.is_nan f then Buffer.add_string buf "0"
  else if f = Float.infinity then Buffer.add_string buf "1e308"
  else if f = Float.neg_infinity then Buffer.add_string buf "-1e308"
  else Buffer.add_string buf (Printf.sprintf "%.3f" f)

let add_arg buf (k, v) =
  add_json_string buf k;
  Buffer.add_char buf ':';
  match v with
  | Trace.Int i -> Buffer.add_string buf (string_of_int i)
  | Trace.Float f -> add_json_float buf f
  | Trace.Str s -> add_json_string buf s

let add_args buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      add_arg buf a)
    args;
  Buffer.add_char buf '}'

let us t = 1e6 *. t

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event format                                           *)

let chrome_event buf e =
  (match e with
  | Trace.Span { name; cat; tid; t; dur; args } ->
    Buffer.add_string buf "{\"name\":";
    add_json_string buf name;
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf (if cat = "" then "lamp" else cat);
    Buffer.add_string buf ",\"ph\":\"X\",\"ts\":";
    add_json_float buf (us t);
    Buffer.add_string buf ",\"dur\":";
    add_json_float buf (us dur);
    Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" tid);
    if args <> [] then begin
      Buffer.add_string buf ",\"args\":";
      add_args buf args
    end
  | Trace.Instant { name; cat; tid; t; args } ->
    Buffer.add_string buf "{\"name\":";
    add_json_string buf name;
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf (if cat = "" then "lamp" else cat);
    Buffer.add_string buf ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    add_json_float buf (us t);
    Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" tid);
    if args <> [] then begin
      Buffer.add_string buf ",\"args\":";
      add_args buf args
    end
  | Trace.Sample { name; cat; tid = _; t; value } ->
    Buffer.add_string buf "{\"name\":";
    add_json_string buf name;
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf (if cat = "" then "lamp" else cat);
    Buffer.add_string buf ",\"ph\":\"C\",\"ts\":";
    add_json_float buf (us t);
    Buffer.add_string buf ",\"pid\":1,\"args\":{\"value\":";
    add_json_float buf value;
    Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let chrome_buffer () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit e =
    if !first then first := false else Buffer.add_string buf ",\n";
    chrome_event buf e
  in
  let events = Trace.events () in
  List.iter emit events;
  (* Final counter and histogram values, as counter points at the end
     of the trace so they render as flat tracks with the totals. *)
  let t_end =
    List.fold_left
      (fun acc e ->
        match e with
        | Trace.Span { t; dur; _ } -> Float.max acc (t +. dur)
        | Trace.Instant { t; _ } | Trace.Sample { t; _ } -> Float.max acc t)
      0.0 events
  in
  List.iter
    (fun (name, v) ->
      emit
        (Trace.Sample
           { name; cat = "counter"; tid = 0; t = t_end; value = float_of_int v }))
    (Trace.counters ());
  List.iter
    (fun (name, (s : Trace.histogram_snapshot)) ->
      emit
        (Trace.Instant
           {
             name;
             cat = "histogram";
             tid = 0;
             t = t_end;
             args =
               [
                 ("count", Trace.Int s.count);
                 ("sum", Trace.Int s.sum);
                 ("max", Trace.Int s.max_value);
               ]
               @ List.map
                   (fun (ub, c) -> ("le_" ^ string_of_int ub, Trace.Int c))
                   s.buckets;
           }))
    (Trace.histograms ());
  Buffer.add_string buf "]}\n";
  buf

let write_chrome path =
  with_out path (fun oc -> Buffer.output_buffer oc (chrome_buffer ()))

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)

let jsonl_line buf e =
  (match e with
  | Trace.Span { name; cat; tid; t; dur; args } ->
    Buffer.add_string buf "{\"type\":\"span\",\"name\":";
    add_json_string buf name;
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf cat;
    Buffer.add_string buf (Printf.sprintf ",\"tid\":%d,\"ts_us\":" tid);
    add_json_float buf (us t);
    Buffer.add_string buf ",\"dur_us\":";
    add_json_float buf (us dur);
    Buffer.add_string buf ",\"args\":";
    add_args buf args
  | Trace.Instant { name; cat; tid; t; args } ->
    Buffer.add_string buf "{\"type\":\"instant\",\"name\":";
    add_json_string buf name;
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf cat;
    Buffer.add_string buf (Printf.sprintf ",\"tid\":%d,\"ts_us\":" tid);
    add_json_float buf (us t);
    Buffer.add_string buf ",\"args\":";
    add_args buf args
  | Trace.Sample { name; cat; tid; t; value } ->
    Buffer.add_string buf "{\"type\":\"sample\",\"name\":";
    add_json_string buf name;
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf cat;
    Buffer.add_string buf (Printf.sprintf ",\"tid\":%d,\"ts_us\":" tid);
    add_json_float buf (us t);
    Buffer.add_string buf ",\"value\":";
    add_json_float buf value);
  Buffer.add_string buf "}\n"

let write_jsonl path =
  with_out path (fun oc ->
      let buf = Buffer.create 65536 in
      List.iter (jsonl_line buf) (Trace.events ());
      List.iter
        (fun (name, v) ->
          Buffer.add_string buf "{\"type\":\"counter\",\"name\":";
          add_json_string buf name;
          Buffer.add_string buf (Printf.sprintf ",\"value\":%d}\n" v))
        (Trace.counters ());
      List.iter
        (fun (name, (s : Trace.histogram_snapshot)) ->
          Buffer.add_string buf "{\"type\":\"histogram\",\"name\":";
          add_json_string buf name;
          Buffer.add_string buf
            (Printf.sprintf ",\"count\":%d,\"sum\":%d,\"max\":%d,\"buckets\":["
               s.count s.sum s.max_value);
          List.iteri
            (fun i (ub, c) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf (Printf.sprintf "[%d,%d]" ub c))
            s.buckets;
          Buffer.add_string buf "]}\n")
        (Trace.histograms ());
      Buffer.output_buffer oc buf)

(* ------------------------------------------------------------------ *)
(* Console report                                                      *)

let pp_report ppf () =
  let spans = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (function
      | Trace.Span { name; dur; _ } ->
        (match Hashtbl.find_opt spans name with
        | Some (n, total) -> Hashtbl.replace spans name (n + 1, total +. dur)
        | None ->
          order := name :: !order;
          Hashtbl.add spans name (1, dur))
      | _ -> ())
    (Trace.events ());
  if !order <> [] then begin
    Fmt.pf ppf "spans (aggregated by name):@.";
    List.iter
      (fun name ->
        let n, total = Hashtbl.find spans name in
        Fmt.pf ppf "  %-40s %8d calls %12.2f ms total %10.3f ms/call@." name n
          (1000.0 *. total)
          (1000.0 *. total /. float_of_int n))
      (List.rev !order)
  end;
  (match Trace.counters () with
  | [] -> ()
  | cs ->
    Fmt.pf ppf "counters:@.";
    List.iter (fun (name, v) -> Fmt.pf ppf "  %-40s %12d@." name v) cs);
  match Trace.histograms () with
  | [] -> ()
  | hs ->
    Fmt.pf ppf "histograms:@.";
    List.iter
      (fun (name, (s : Trace.histogram_snapshot)) ->
        Fmt.pf ppf "  %-40s count %8d mean %10.1f max %10d@." name s.count
          (if s.count = 0 then 0.0
           else float_of_int s.sum /. float_of_int s.count)
          s.max_value)
      hs

(* ------------------------------------------------------------------ *)
(* OpenMetrics / Prometheus text exposition                            *)

(* Prometheus metric names are [a-zA-Z0-9_:]; ours use dots. Sanitize
   and prefix with the exporter namespace. *)
let om_name name =
  let buf = Buffer.create (String.length name + 5) in
  if String.length name < 5 || String.sub name 0 5 <> "lamp_" then
    Buffer.add_string buf "lamp_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' ->
        Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let om_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* One [# HELP]/[# TYPE] header per metric family. [raw] is the
   pre-sanitization name {!Metrics.describe} was keyed on. *)
let om_header buf seen ~raw ~base kind =
  if not (Hashtbl.mem seen base) then begin
    Hashtbl.add seen base ();
    (match Metrics.help raw with
    | Some h ->
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" base h)
    | None -> ());
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
  end

let om_skew buf seen =
  match Sketch.latest () with
  | None -> ()
  | Some (r : Sketch.report) ->
    let g raw v =
      let base = om_name raw in
      om_header buf seen ~raw ~base "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %s\n" base (om_float v))
    in
    g "skew.round" (float_of_int r.round);
    g "skew.p" (float_of_int r.p);
    g "skew.m" (float_of_int r.m);
    g "skew.threshold" (float_of_int r.threshold);
    g "skew.est_max_load" (float_of_int r.est_max_load);
    g "skew.max_received" (float_of_int r.max_received);
    g "skew.total_received" (float_of_int r.total_received);
    g "skew.error_bound" (float_of_int r.error_bound);
    let top_base = om_name "skew.top" in
    om_header buf seen ~raw:"skew.top" ~base:top_base "gauge";
    List.iteri
      (fun i (key, est) ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" top_base
             (Metrics.render_labels ""
                [
                  ("ctx", r.label);
                  ("rank", string_of_int (i + 1));
                  ("key", key);
                ])
             est))
      r.top;
    let rel_base = om_name "skew.rel" in
    om_header buf seen ~raw:"skew.rel" ~base:rel_base "gauge";
    List.iter
      (fun (rel, n) ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" rel_base
             (Metrics.render_labels "" [ ("rel", rel) ])
             n))
      r.rels;
    let base = om_name "skew.reports" in
    om_header buf seen ~raw:"skew.reports" ~base "counter";
    Buffer.add_string buf
      (Printf.sprintf "%s_total %d\n" base (Sketch.report_count ()))

let openmetrics () =
  let buf = Buffer.create 8192 in
  let seen = Hashtbl.create 64 in
  (* Counters: zeros included, so a scraper's rate() resets cleanly. *)
  List.iter
    (fun (name, v) ->
      let raw, labels = Metrics.split_labels name in
      let base = om_name raw in
      om_header buf seen ~raw ~base "counter";
      Buffer.add_string buf (Printf.sprintf "%s_total%s %d\n" base labels v))
    (Trace.counters ~all:true ());
  (* Gauges: settable values and on-demand callbacks. *)
  List.iter
    (fun (name, v) ->
      let raw, labels = Metrics.split_labels name in
      let base = om_name raw in
      om_header buf seen ~raw ~base "gauge";
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" base labels (om_float v)))
    (Metrics.gauges ());
  (* Histograms: the power-of-two buckets, made cumulative as the
     exposition format requires. *)
  List.iter
    (fun (name, (s : Trace.histogram_snapshot)) ->
      let raw, labels = Metrics.split_labels name in
      let base = om_name raw in
      om_header buf seen ~raw ~base "histogram";
      let strip l =
        (* merge the le label into an existing label set *)
        if l = "" then "" else String.sub l 1 (String.length l - 2) ^ ","
      in
      let cum = ref 0 in
      List.iter
        (fun (ub, c) ->
          cum := !cum + c;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{%sle=\"%d\"} %d\n" base (strip labels)
               ub !cum))
        s.buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{%sle=\"+Inf\"} %d\n" base (strip labels)
           s.count);
      Buffer.add_string buf (Printf.sprintf "%s_sum%s %d\n" base labels s.sum);
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" base labels s.count))
    (Trace.histograms ~all:true ());
  om_skew buf seen;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let write_openmetrics path =
  with_out path (fun oc -> output_string oc (openmetrics ()))

(* Parser for the exposition format — enough for [lamp top] and the
   tests to read back what [openmetrics] (or any Prometheus exporter)
   emits: [name{k="v",...} value] lines, comments skipped. *)
let parse_openmetrics text =
  let parse_line line =
    let n = String.length line in
    if n = 0 || line.[0] = '#' then None
    else
      try
        let i = ref 0 in
        while !i < n && line.[!i] <> '{' && line.[!i] <> ' ' do incr i done;
        let name = String.sub line 0 !i in
        let labels = ref [] in
        if !i < n && line.[!i] = '{' then begin
          incr i;
          let rec pairs () =
            if line.[!i] = '}' then incr i
            else begin
              let k0 = !i in
              while line.[!i] <> '=' do incr i done;
              let k = String.sub line k0 (!i - k0) in
              i := !i + 2 (* skip the = and the opening quote *);
              let b = Buffer.create 8 in
              let rec scan () =
                match line.[!i] with
                | '\\' ->
                  incr i;
                  (match line.[!i] with
                  | 'n' -> Buffer.add_char b '\n'
                  | c -> Buffer.add_char b c);
                  incr i;
                  scan ()
                | '"' -> incr i
                | c ->
                  Buffer.add_char b c;
                  incr i;
                  scan ()
              in
              scan ();
              labels := (k, Buffer.contents b) :: !labels;
              if line.[!i] = ',' then begin
                incr i;
                pairs ()
              end
              else incr i (* '}' *)
            end
          in
          pairs ()
        end;
        while !i < n && line.[!i] = ' ' do incr i done;
        let j = ref !i in
        while !j < n && line.[!j] <> ' ' do incr j done;
        match float_of_string_opt (String.sub line !i (!j - !i)) with
        | Some v -> Some (name, List.rev !labels, v)
        | None -> None
      with _ -> None
  in
  String.split_on_char '\n' text |> List.filter_map parse_line

(* ------------------------------------------------------------------ *)
(* Metrics JSON (bench results file)                                   *)

type meta =
  | Mstr of string
  | Mint of int
  | Mbool of bool

let write_metrics_json path ~meta ~groups =
  with_out path (fun oc ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf "{\n";
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf "  ";
          add_json_string buf k;
          Buffer.add_string buf ": ";
          (match v with
          | Mstr s -> add_json_string buf s
          | Mint i -> Buffer.add_string buf (string_of_int i)
          | Mbool b -> Buffer.add_string buf (string_of_bool b));
          Buffer.add_string buf ",\n")
        meta;
      Buffer.add_string buf "  \"experiments\": {\n";
      List.iteri
        (fun i (name, metrics) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf "    ";
          add_json_string buf name;
          Buffer.add_string buf ": {\n";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_string buf ",\n";
              Buffer.add_string buf "      ";
              add_json_string buf k;
              Buffer.add_string buf ": ";
              add_json_float buf v)
            metrics;
          Buffer.add_string buf "\n    }")
        groups;
      Buffer.add_string buf "\n  }\n}\n";
      Buffer.output_buffer oc buf)
