(** Database instances: finite sets of facts, indexed by relation name.

    Instances are persistent (purely functional); all bulk operations are
    set-algebraic on the per-relation tuple sets. *)

type t

val empty : t
val is_empty : t -> bool

val add : Fact.t -> t -> t
val remove : Fact.t -> t -> t
val mem : Fact.t -> t -> bool
val singleton : Fact.t -> t

val of_facts : Fact.t list -> t
(** Bulk constructor: buckets per relation, then one sort-and-dedup
    pass per relation — much faster than repeated {!add} on large
    batches (the MPC merge phase builds every inbox with it). *)

val of_list : Fact.t list -> t

val of_tuple_set : string -> Tuple.Set.t -> t
(** [of_tuple_set rel ts] is the instance holding exactly the tuples
    [ts] under [rel] — O(1), the set is shared, not copied. *)

val add_tuple_set : string -> Tuple.Set.t -> t -> t
(** Bulk union of a whole tuple set into one relation. *)

val tuples : t -> string -> Tuple.Set.t
(** All tuples of the given relation; empty set when absent. *)

val tuple_list : t -> string -> Tuple.t list

val relations : t -> string list
(** Relation names with at least one tuple, sorted. *)

val fold : (Fact.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Fact.t -> unit) -> t -> unit
val facts : t -> Fact.t list
val fact_set : t -> Fact.Set.t
val of_fact_set : Fact.Set.t -> t

val cardinal : t -> int
(** Number of facts ([m] in the paper's load bounds). *)

val filter : (Fact.t -> bool) -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val adom : t -> Value.Set.t
(** Active domain: all values occurring in some fact. *)

val restrict : Value.Set.t -> t -> t
(** [restrict c t] is the induced subinstance [t|c]: all facts whose
    values all belong to [c] (Lemma 5.7 of the paper). *)

val schema : t -> Schema.t
(** Inferred schema. Mixed arities for one relation are possible in an
    instance; the arity of an arbitrary tuple is reported. *)

val pp : t Fmt.t

val of_string : string -> t
(** Parses facts separated by periods, semicolons or newlines, e.g.
    ["R(a,b). R(b,c). S(a,a)"].
    @raise Invalid_argument on malformed facts. *)
