module Smap = Map.Make (String)

type t = Tuple.Set.t Smap.t

let empty = Smap.empty
let is_empty t = Smap.for_all (fun _ ts -> Tuple.Set.is_empty ts) t

let add fact t =
  let rel = Fact.rel fact in
  let prev =
    match Smap.find_opt rel t with
    | Some ts -> ts
    | None -> Tuple.Set.empty
  in
  Smap.add rel (Tuple.Set.add (Fact.args fact) prev) t

let remove fact t =
  match Smap.find_opt (Fact.rel fact) t with
  | None -> t
  | Some ts ->
    let ts = Tuple.Set.remove (Fact.args fact) ts in
    if Tuple.Set.is_empty ts then Smap.remove (Fact.rel fact) t
    else Smap.add (Fact.rel fact) ts t

let mem fact t =
  match Smap.find_opt (Fact.rel fact) t with
  | None -> false
  | Some ts -> Tuple.Set.mem (Fact.args fact) ts

let singleton fact = add fact empty

(* Bulk construction fast path: bucket tuples per relation first, then
   build each relation's set in one sort + dedup pass instead of one
   tree insertion per fact. This is the constructor on the MPC merge
   phase's hot path (Cluster.run_round builds every server's inbox with
   it each round). *)
let of_facts facts =
  match facts with
  | [] -> empty
  | _ ->
    let buckets : (string, Tuple.t list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun f ->
        let rel = Fact.rel f in
        let prev = Option.value ~default:[] (Hashtbl.find_opt buckets rel) in
        Hashtbl.replace buckets rel (Fact.args f :: prev))
      facts;
    Hashtbl.fold
      (fun rel tups acc -> Smap.add rel (Tuple.Set.of_list tups) acc)
      buckets Smap.empty

let of_list = of_facts

let of_tuple_set rel ts =
  if Tuple.Set.is_empty ts then empty else Smap.singleton rel ts

let add_tuple_set rel ts t =
  if Tuple.Set.is_empty ts then t
  else
    let prev =
      match Smap.find_opt rel t with
      | Some prev -> prev
      | None -> Tuple.Set.empty
    in
    Smap.add rel (Tuple.Set.union prev ts) t

let tuples t rel =
  match Smap.find_opt rel t with
  | Some ts -> ts
  | None -> Tuple.Set.empty

let tuple_list t rel = Tuple.Set.elements (tuples t rel)

let relations t =
  Smap.fold
    (fun rel ts acc -> if Tuple.Set.is_empty ts then acc else rel :: acc)
    t []
  |> List.rev

let fold f t init =
  Smap.fold
    (fun rel ts acc ->
      Tuple.Set.fold (fun tup acc -> f (Fact.make rel tup) acc) ts acc)
    t init

let iter f t = fold (fun fact () -> f fact) t ()
let facts t = List.rev (fold (fun f acc -> f :: acc) t [])
let fact_set t = fold Fact.Set.add t Fact.Set.empty
let of_fact_set s = Fact.Set.fold add s empty

let cardinal t = Smap.fold (fun _ ts acc -> acc + Tuple.Set.cardinal ts) t 0

let filter p t =
  Smap.filter_map
    (fun rel ts ->
      let ts = Tuple.Set.filter (fun tup -> p (Fact.make rel tup)) ts in
      if Tuple.Set.is_empty ts then None else Some ts)
    t

let union t1 t2 =
  Smap.union (fun _ ts1 ts2 -> Some (Tuple.Set.union ts1 ts2)) t1 t2

let inter t1 t2 =
  Smap.merge
    (fun _ o1 o2 ->
      match o1, o2 with
      | Some ts1, Some ts2 ->
        let ts = Tuple.Set.inter ts1 ts2 in
        if Tuple.Set.is_empty ts then None else Some ts
      | _ -> None)
    t1 t2

let diff t1 t2 =
  Smap.merge
    (fun _ o1 o2 ->
      match o1, o2 with
      | Some ts1, Some ts2 ->
        let ts = Tuple.Set.diff ts1 ts2 in
        if Tuple.Set.is_empty ts then None else Some ts
      | Some ts1, None -> Some ts1
      | None, _ -> None)
    t1 t2

let subset t1 t2 =
  Smap.for_all (fun rel ts1 -> Tuple.Set.subset ts1 (tuples t2 rel)) t1

let equal t1 t2 = subset t1 t2 && subset t2 t1

let compare t1 t2 =
  Fact.Set.compare (fact_set t1) (fact_set t2)

let adom t =
  fold (fun f acc -> Value.Set.union (Fact.adom f) acc) t Value.Set.empty

let restrict dom t =
  filter (fun f -> Value.Set.subset (Fact.adom f) dom) t

let schema t =
  Smap.fold
    (fun rel ts acc ->
      match Tuple.Set.choose_opt ts with
      | None -> acc
      | Some tup -> Schema.add rel ~arity:(Tuple.arity tup) acc)
    t Schema.empty

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Fact.pp) (facts t)

(* Textual format: facts separated by periods, semicolons or newlines,
   e.g. "R(a,b). R(b,c). S(a,a)". *)
let of_string s =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    let part = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if part <> "" then out := Fact.of_string part :: !out
  in
  String.iter
    (fun c ->
      match c with
      | '.' | ';' | '\n' -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  of_facts (List.rev !out)
