(* Global value interner: every Value.t maps to a dense int id, so the
   engine layers (compiled CQ plans, the Datalog fixpoint database) can
   compare, hash and join on plain integers.

   Domain safety under the pool backend: the table and the id counter
   are only touched under [mutex]. The id -> value direction is a
   two-level chunked store whose cells are written exactly once, under
   the mutex, before the id is published; a domain holding an id
   obtained it either by interning (synchronising on [mutex]) or from
   data handed over by the executor (synchronising on its batch
   mutexes), so the happens-before edge guarantees it observes the
   chunk pointer and the cell write. Chunks are never resized — growth
   allocates new chunks and, rarely, a wider directory whose prefix is
   copied verbatim — so lock-free readers never see a partially built
   cell for a published id. *)

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits

let mutex = Mutex.create ()
let table : (Value.t, int) Hashtbl.t = Hashtbl.create 4096
let placeholder = Value.Int 0
let chunks : Value.t array array ref = ref [||]
let count = ref 0

(* Int values — the bulk of every workload — get their own
   open-addressing int → id map instead of the polymorphic [table]:
   no boxing on lookup, one flat probe sequence instead of a hash
   C-call plus a bucket chase. [ivals.(i) = -1] marks an empty slot
   (ids are non-negative), so any key int is storable. Guarded by
   [mutex] like [table]. *)
let ikeys = ref (Array.make 4096 0)
let ivals = ref (Array.make 4096 (-1))
let imask = ref 4095

(* All of the functions below assume [mutex] is held. *)

let ihash k mask =
  let h = (k lxor (k lsr 33)) * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 29)) land mask

(* Slot of [k], or [-(free slot) - 1] when absent. *)
let iprobe k =
  let keys = !ikeys and vals = !ivals and mask = !imask in
  let rec go i =
    if vals.(i) = -1 then -i - 1
    else if keys.(i) = k then i
    else go ((i + 1) land mask)
  in
  go (ihash k mask)

let igrow () =
  let okeys = !ikeys and ovals = !ivals in
  let mask = (2 * (!imask + 1)) - 1 in
  ikeys := Array.make (mask + 1) 0;
  ivals := Array.make (mask + 1) (-1);
  imask := mask;
  Array.iteri
    (fun i id ->
      if id <> -1 then begin
        let j = -iprobe okeys.(i) - 1 in
        !ikeys.(j) <- okeys.(i);
        !ivals.(j) <- id
      end)
    ovals

let ensure_capacity i =
  let chunk = i lsr chunk_bits in
  let dir = !chunks in
  let dir =
    if chunk < Array.length dir then dir
    else begin
      let wider = Array.make (max 8 (2 * (chunk + 1))) [||] in
      Array.blit dir 0 wider 0 (Array.length dir);
      chunks := wider;
      wider
    end
  in
  if Array.length dir.(chunk) = 0 then
    dir.(chunk) <- Array.make chunk_size placeholder

let publish i v =
  ensure_capacity i;
  (!chunks).(i lsr chunk_bits).(i land (chunk_size - 1)) <- v;
  count := i + 1

let id_locked v =
  match v with
  | Value.Int n ->
    let j = iprobe n in
    if j >= 0 then !ivals.(j)
    else begin
      let i = !count in
      publish i v;
      let j = -j - 1 in
      !ikeys.(j) <- n;
      !ivals.(j) <- i;
      (* Load factor 1/2: [count] tracks ints and strings together, so
         grow on the conservative side. *)
      if 2 * !count > !imask then igrow ();
      i
    end
  | Value.Str _ -> (
    match Hashtbl.find_opt table v with
    | Some i -> i
    | None ->
      let i = !count in
      publish i v;
      Hashtbl.add table v i;
      i)

let id v =
  Mutex.lock mutex;
  let i = id_locked v in
  Mutex.unlock mutex;
  i

let find v =
  Mutex.lock mutex;
  let r =
    match v with
    | Value.Int n ->
      let j = iprobe n in
      if j >= 0 then Some !ivals.(j) else None
    | Value.Str _ -> Hashtbl.find_opt table v
  in
  Mutex.unlock mutex;
  r

let size () =
  Mutex.lock mutex;
  let n = !count in
  Mutex.unlock mutex;
  n

(* Lock-free by design: see the header comment for the publication
   argument. *)
let value i = (!chunks).(i lsr chunk_bits).(i land (chunk_size - 1))

let tuple (t : Tuple.t) =
  Mutex.lock mutex;
  let r = Array.map id_locked t in
  Mutex.unlock mutex;
  r

let untuple (ids : int array) : Tuple.t = Array.map value ids
