(** Global, domain-safe value interner.

    Maps every {!Value.t} to a dense integer id, so that equality,
    comparison and hashing of values — and of the tuples and facts
    built from them — become integer operations in the engine layers
    (compiled CQ plans, the Datalog fixpoint database). The mapping is
    process-global and append-only: ids are never reused, and a value's
    id is stable for the lifetime of the process, which is what lets
    compiled plans bake constant ids in and databases exchange interned
    tuples freely.

    All operations are safe to call concurrently from multiple domains
    (the pool backend evaluates queries on worker domains). *)

val id : Value.t -> int
(** The id of [v], interning it first if it is new. O(1) amortized. *)

val find : Value.t -> int option
(** The id of [v] if it has been interned, without interning it. *)

val value : int -> Value.t
(** The value with the given id.
    Unspecified behaviour on ids never returned by {!id}. *)

val size : unit -> int
(** Number of distinct values interned so far. *)

val tuple : Tuple.t -> int array
(** Interns every component, taking the lock once for the whole
    tuple. *)

val untuple : int array -> Tuple.t
(** Inverse of {!tuple} on valid ids. *)
