open Lamp_relational

type t = {
  cols : string list;
  rows : Tuple.Set.t;
}

let cols t = t.cols
let cardinal t = Tuple.Set.cardinal t.rows
let rows t = Tuple.Set.elements t.rows

let check_arity cols row =
  if Array.length row <> List.length cols then
    invalid_arg "Relation: row arity does not match columns"

let create ~cols rows =
  if List.length (List.sort_uniq String.compare cols) <> List.length cols then
    invalid_arg "Relation.create: duplicate column names";
  List.iter (check_arity cols) rows;
  { cols; rows = Tuple.Set.of_list rows }

let empty ~cols = create ~cols []

let of_instance instance ~rel ~cols =
  let rows =
    Tuple.Set.filter
      (fun tup -> Tuple.arity tup = List.length cols)
      (Instance.tuples instance rel)
  in
  { cols; rows }

let to_instance t ~rel = Instance.of_tuple_set rel t.rows

let position t c =
  match List.find_index (String.equal c) t.cols with
  | Some i -> i
  | None -> invalid_arg (Fmt.str "Relation: unknown column %s" c)

let equal t1 t2 =
  (* Equality up to column order. *)
  List.sort String.compare t1.cols = List.sort String.compare t2.cols
  &&
  let perm = List.map (position t1) t2.cols in
  Tuple.Set.equal
    (Tuple.Set.map
       (fun row -> Array.of_list (List.map (fun i -> row.(i)) perm))
       t1.rows)
    t2.rows

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)

type operand =
  | Col of string
  | Const of Value.t

type pred =
  | Eq of operand * operand
  | Neq of operand * operand
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

let rec eval_pred t row = function
  | Eq (o1, o2) -> Value.equal (operand t row o1) (operand t row o2)
  | Neq (o1, o2) -> not (Value.equal (operand t row o1) (operand t row o2))
  | And (p1, p2) -> eval_pred t row p1 && eval_pred t row p2
  | Or (p1, p2) -> eval_pred t row p1 || eval_pred t row p2
  | Not p -> not (eval_pred t row p)

and operand t row = function
  | Col c -> row.(position t c)
  | Const v -> v

(* ------------------------------------------------------------------ *)
(* Operators                                                           *)

let select pred t = { t with rows = Tuple.Set.filter (fun r -> eval_pred t r pred) t.rows }

let project cols t =
  let positions = List.map (position t) cols in
  {
    cols;
    rows =
      Tuple.Set.map
        (fun row -> Array.of_list (List.map (fun i -> row.(i)) positions))
        t.rows;
  }

let rename mapping t =
  let rename_col c =
    match List.assoc_opt c mapping with Some c' -> c' | None -> c
  in
  let cols = List.map rename_col t.cols in
  if List.length (List.sort_uniq String.compare cols) <> List.length cols then
    invalid_arg "Relation.rename: renaming creates duplicate columns";
  { t with cols }

let reorder_like t1 t2 =
  (* Rows of t2 permuted into t1's column order. *)
  let perm = List.map (position t2) t1.cols in
  Tuple.Set.map
    (fun row -> Array.of_list (List.map (fun i -> row.(i)) perm))
    t2.rows

let same_cols what t1 t2 =
  if List.sort String.compare t1.cols <> List.sort String.compare t2.cols then
    invalid_arg (Fmt.str "Relation.%s: incompatible columns" what)

let union t1 t2 =
  same_cols "union" t1 t2;
  { t1 with rows = Tuple.Set.union t1.rows (reorder_like t1 t2) }

let diff t1 t2 =
  same_cols "diff" t1 t2;
  { t1 with rows = Tuple.Set.diff t1.rows (reorder_like t1 t2) }

let inter t1 t2 =
  same_cols "inter" t1 t2;
  { t1 with rows = Tuple.Set.inter t1.rows (reorder_like t1 t2) }

let shared_cols t1 t2 = List.filter (fun c -> List.mem c t2.cols) t1.cols

(* Join keys are interned value ids: hashing and equality on the
   Hashtbl keys below are integer operations, not structural ones over
   boxed values. *)
let key_of positions row = List.map (fun i -> Intern.id row.(i)) positions

let values_of positions row = List.map (fun i -> row.(i)) positions

let join t1 t2 =
  let shared = shared_cols t1 t2 in
  let extra = List.filter (fun c -> not (List.mem c t1.cols)) t2.cols in
  let pos1 = List.map (position t1) shared in
  let pos2 = List.map (position t2) shared in
  let pos_extra = List.map (position t2) extra in
  let index = Hashtbl.create 64 in
  Tuple.Set.iter
    (fun row ->
      let key = key_of pos2 row in
      Hashtbl.replace index key
        (row :: Option.value ~default:[] (Hashtbl.find_opt index key)))
    t2.rows;
  let rows =
    Tuple.Set.fold
      (fun row1 acc ->
        match Hashtbl.find_opt index (key_of pos1 row1) with
        | None -> acc
        | Some matches ->
          List.fold_left
            (fun acc row2 ->
              Tuple.Set.add
                (Array.append row1 (Array.of_list (values_of pos_extra row2)))
                acc)
            acc matches)
      t1.rows Tuple.Set.empty
  in
  { cols = t1.cols @ extra; rows }

let semijoin t1 t2 =
  let shared = shared_cols t1 t2 in
  let pos1 = List.map (position t1) shared in
  let pos2 = List.map (position t2) shared in
  let keys = Hashtbl.create 64 in
  Tuple.Set.iter (fun row -> Hashtbl.replace keys (key_of pos2 row) ()) t2.rows;
  if shared = [] then
    (* Degenerate: semijoin against a nonempty relation keeps all. *)
    { t1 with rows = (if Tuple.Set.is_empty t2.rows then Tuple.Set.empty else t1.rows) }
  else
    { t1 with rows = Tuple.Set.filter (fun r -> Hashtbl.mem keys (key_of pos1 r)) t1.rows }

let antijoin t1 t2 =
  let shared = shared_cols t1 t2 in
  let pos1 = List.map (position t1) shared in
  let pos2 = List.map (position t2) shared in
  let keys = Hashtbl.create 64 in
  Tuple.Set.iter (fun row -> Hashtbl.replace keys (key_of pos2 row) ()) t2.rows;
  if shared = [] then
    { t1 with rows = (if Tuple.Set.is_empty t2.rows then t1.rows else Tuple.Set.empty) }
  else
    {
      t1 with
      rows = Tuple.Set.filter (fun r -> not (Hashtbl.mem keys (key_of pos1 r))) t1.rows;
    }

let product t1 t2 =
  List.iter
    (fun c ->
      if List.mem c t2.cols then
        invalid_arg (Fmt.str "Relation.product: shared column %s" c))
    t1.cols;
  let rows =
    Tuple.Set.fold
      (fun r1 acc ->
        Tuple.Set.fold
          (fun r2 acc -> Tuple.Set.add (Array.append r1 r2) acc)
          t2.rows acc)
      t1.rows Tuple.Set.empty
  in
  { cols = t1.cols @ t2.cols; rows }

let pp ppf t =
  Fmt.pf ppf "%s:{%a}"
    (String.concat "," t.cols)
    Fmt.(list ~sep:(any "; ") Tuple.pp)
    (Tuple.Set.elements t.rows)
