open Lamp_relational
module Trace = Lamp_obs.Trace

(* Worst-case-optimal join over the interned engine, in the
   Leapfrog-Triejoin style: variables are eliminated one at a time and
   the candidates for each variable are the intersection of the sorted
   value ranges offered by every atom containing it — iterated
   smallest-range-first with galloping (exponential + binary search)
   probes into the others. The work is bounded by the AGM output bound
   m^ρ* instead of the intermediate-result sizes a binary join plan
   pays on cyclic queries.

   The trie view is virtual: an atom's sorted range at a level is read
   straight out of the flat-bucket column indexes of {!Plan.Db} (probe
   the first statically bound position, filter by the other bound
   positions, collect the level variable's column, sort in place in a
   reused scratch buffer) — no second index structure is ever
   materialized. Ranges that do not depend on earlier variables
   (static sources) are computed once per fold and cached. *)

(* Profiling counters (lamp.obs): guarded by a [Trace.is_enabled] flag
   hoisted out of the fold, so tracing off costs one atomic load. *)
let cnt_probes = Trace.counter "cq.wcoj_probes"
let cnt_gallops = Trace.counter "cq.wcoj_gallop_steps"
let cnt_emitted = Trace.counter "cq.wcoj_emitted"
let cnt_intersections = Trace.counter "cq.wcoj_intersections"

let () =
  let module M = Lamp_obs.Metrics in
  M.describe ~kind:M.Counter ~help:"Trie-range probes during leapfrog folds"
    "cq.wcoj_probes";
  M.describe ~kind:M.Counter ~help:"Galloping search steps across ranges"
    "cq.wcoj_gallop_steps";
  M.describe ~kind:M.Counter ~help:"Tuples emitted by worst-case-optimal joins"
    "cq.wcoj_emitted";
  M.describe ~kind:M.Counter
    ~help:"Multi-way intersections materialized per variable level"
    "cq.wcoj_intersections"

type probe_key =
  | Kconst of int
  | Kslot of int

type check =
  | Cconst of int * int (* position, constant id *)
  | Cslot of int * int (* position, slot bound at an earlier level *)

(* One atom's contribution to one variable level. *)
type source = {
  s_rel : string;
  s_arity : int;
  s_probe : (int * probe_key) option;
      (* first statically bound position, when one exists *)
  s_checks : check array; (* remaining bound positions *)
  s_vpos : int array; (* positions of the level variable, >= 1 *)
  s_static : bool; (* independent of earlier levels: cache per fold *)
}

type level = {
  l_var : string;
  l_sources : source array;
}

type nterm =
  | Nslot of int
  | Nconst of int

type natom = {
  nrel : string;
  nterms : nterm array;
}

type t = {
  nslots : int;
  vars : string array; (* slot (= elimination position) -> variable *)
  levels : level array;
  ground : (string * int array) array; (* variable-free body atoms *)
  n_atoms : int;
  negated : natom array;
  diseq : (nterm * nterm) array;
  head_rel : string;
  head_terms : nterm array;
}

let atom_count t = t.n_atoms
let head_rel t = t.head_rel
let var_order t = Array.to_list t.vars

(* ------------------------------------------------------------------ *)
(* Variable order                                                      *)

(* Most-constrained-first elimination order, fully deterministic: pick
   greedily the variable covered by the most body atoms, preferring
   variables connected to the already-chosen prefix (avoiding cartesian
   levels), breaking remaining ties by the smallest total cardinality
   of the covering relations (per [counts]) and finally by variable
   name — a pure function of the query and the size estimates. *)
let default_order ~counts q =
  let body = Ast.body q in
  let vars = Ast.body_vars q in
  let covering v =
    List.filter (fun a -> List.mem v (Ast.atom_vars a)) body
  in
  let cover_count = List.map (fun v -> (v, List.length (covering v))) vars in
  let cover_size =
    List.map
      (fun v ->
        ( v,
          List.fold_left (fun acc a -> acc + counts a.Ast.rel) 0 (covering v) ))
      vars
  in
  let count v = List.assoc v cover_count in
  let size v = List.assoc v cover_size in
  let connected chosen v =
    chosen = []
    || List.exists
         (fun a ->
           let avs = Ast.atom_vars a in
           List.mem v avs && List.exists (fun u -> List.mem u avs) chosen)
         body
  in
  let rec pick chosen remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let pool =
        match List.filter (connected chosen) remaining with
        | [] -> remaining
        | connected -> connected
      in
      let best =
        List.fold_left
          (fun best v ->
            match best with
            | None -> Some v
            | Some b ->
              let c = Int.compare (count v) (count b) in
              if c > 0 then Some v
              else if c < 0 then best
              else
                let s = Int.compare (size v) (size b) in
                if s < 0 then Some v
                else if s > 0 then best
                else if String.compare v b < 0 then Some v
                else best)
          None pool
      in
      (match best with
      | None -> List.rev acc
      | Some v ->
        pick (v :: chosen)
          (List.filter (fun u -> u <> v) remaining)
          (v :: acc))
  in
  pick [] vars []

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

let make ?counts ?order q =
  let counts = Option.value ~default:(fun _ -> 0) counts in
  let order =
    match order with
    | None -> default_order ~counts q
    | Some o ->
      if
        List.sort String.compare o
        <> List.sort String.compare (Ast.body_vars q)
      then invalid_arg "Wcoj.make: order must enumerate the body variables";
      o
  in
  let vars = Array.of_list order in
  let nslots = Array.length vars in
  let slot_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri (fun s v -> Hashtbl.add slot_tbl v s) vars;
  let slot v = Hashtbl.find slot_tbl v in
  let body = Ast.body q in
  let ground, varred =
    List.partition (fun a -> Ast.atom_vars a = []) body
  in
  let ground =
    Array.of_list
      (List.map
         (fun (a : Ast.atom) ->
           ( a.Ast.rel,
             Array.of_list
               (List.map
                  (function
                    | Ast.Const c -> Intern.id c
                    | Ast.Var _ -> assert false)
                  a.Ast.terms) ))
         ground)
  in
  (* The source atom [a] contributes at level [lv] (the elimination
     position of one of its variables): probe the first position bound
     before [lv] — a constant, or a variable eliminated earlier —
     check the rest, and collect the level variable's positions. *)
  let source_at (a : Ast.atom) lv =
    let v = vars.(lv) in
    let terms = Array.of_list a.Ast.terms in
    let bound = function
      | Ast.Const c -> Some (Kconst (Intern.id c))
      | Ast.Var u -> if slot u < lv then Some (Kslot (slot u)) else None
    in
    let probe = ref None in
    let checks = ref [] in
    let vpos = ref [] in
    Array.iteri
      (fun i t ->
        match bound t with
        | Some key ->
          if !probe = None then probe := Some (i, key)
          else
            checks :=
              (match key with
              | Kconst c -> Cconst (i, c)
              | Kslot s -> Cslot (i, s))
              :: !checks
        | None -> (
          match t with
          | Ast.Var u when u = v -> vpos := i :: !vpos
          | _ -> ()))
      terms;
    let is_static =
      Array.for_all
        (function Ast.Var u -> slot u >= lv | Ast.Const _ -> true)
        terms
    in
    {
      s_rel = a.Ast.rel;
      s_arity = Array.length terms;
      s_probe = !probe;
      s_checks = Array.of_list (List.rev !checks);
      s_vpos = Array.of_list (List.rev !vpos);
      s_static = is_static;
    }
  in
  let levels =
    Array.init nslots (fun lv ->
        let v = vars.(lv) in
        let sources =
          List.filter (fun a -> List.mem v (Ast.atom_vars a)) varred
          |> List.map (fun a -> source_at a lv)
        in
        { l_var = v; l_sources = Array.of_list sources })
  in
  let nterm = function
    | Ast.Const c -> Nconst (Intern.id c)
    | Ast.Var v -> (
      match Hashtbl.find_opt slot_tbl v with
      | Some s -> Nslot s
      | None -> invalid_arg (Fmt.str "Wcoj.make: unsafe variable %s" v))
  in
  let natom (a : Ast.atom) =
    { nrel = a.Ast.rel; nterms = Array.of_list (List.map nterm a.Ast.terms) }
  in
  let head = Ast.head q in
  {
    nslots;
    vars;
    levels;
    ground;
    n_atoms = List.length body;
    negated = Array.of_list (List.map natom (Ast.negated q));
    diseq =
      Array.of_list
        (List.map (fun (t1, t2) -> (nterm t1, nterm t2)) (Ast.diseq q));
    head_rel = head.Ast.rel;
    head_terms = Array.of_list (List.map nterm head.Ast.terms);
  }

(* ------------------------------------------------------------------ *)
(* Sorted scratch ranges                                               *)

(* Growable int buffer holding one source's candidate range; sorted and
   deduplicated in place after collection, reused across prefix
   bindings — the inner loop allocates nothing but the ranges
   themselves growing. *)
type buf = {
  mutable data : int array;
  mutable len : int;
}

let buf_push b v =
  if b.len = Array.length b.data then begin
    let bigger = Array.make (max 16 (2 * b.len)) 0 in
    Array.blit b.data 0 bigger 0 b.len;
    b.data <- bigger
  end;
  b.data.(b.len) <- v;
  b.len <- b.len + 1

(* In-place sort of [a.(lo..hi-1)]: insertion sort under 16 elements,
   median-of-three quicksort above — no allocation, no comparator
   closure. *)
let rec sort_range a lo hi =
  let n = hi - lo in
  if n <= 16 then
    for i = lo + 1 to hi - 1 do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  else begin
    let mid = lo + (n / 2) in
    let swap i j =
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    in
    (* median of first/mid/last into [lo] as the pivot *)
    if a.(mid) < a.(lo) then swap mid lo;
    if a.(hi - 1) < a.(lo) then swap (hi - 1) lo;
    if a.(hi - 1) < a.(mid) then swap (hi - 1) mid;
    swap lo mid;
    let pivot = a.(lo) in
    let i = ref (lo + 1) and j = ref (hi - 1) in
    while !i <= !j do
      while !i <= !j && a.(!i) < pivot do incr i done;
      while !i <= !j && a.(!j) > pivot do decr j done;
      if !i <= !j then begin
        swap !i !j;
        incr i;
        decr j
      end
    done;
    swap lo !j;
    sort_range a lo !j;
    sort_range a (!j + 1) hi
  end

(* Runtime state of one (level, source) pair. [st_cur]/[st_cur_len] is
   the source's current sorted range — pointing into the scratch
   buffer, a memoized array, or the static range computed on first
   use. *)
type rstate = {
  st_src : source;
  st_store : Plan.Db.raw_store;
  st_col : (int * Plan.Db.raw_col) option;
  st_buf : buf;
  st_memo : (int, int array) Hashtbl.t option;
  mutable st_cur : int array;
  mutable st_cur_len : int;
  mutable st_ready : bool; (* static sources: computed once per fold *)
}

let object_state src store col memoizable =
  {
    st_src = src;
    st_store = store;
    st_col = col;
    st_buf = { data = Array.make 16 0; len = 0 };
    st_memo = (if memoizable then Some (Hashtbl.create 64) else None);
    st_cur = [||];
    st_cur_len = 0;
    st_ready = false;
  }

(* Sort + dedup the buffer contents; leaves a strictly increasing
   prefix of length [b.len]. *)
let buf_finish b =
  if b.len > 1 then begin
    sort_range b.data 0 b.len;
    let w = ref 1 in
    for r = 1 to b.len - 1 do
      if b.data.(r) <> b.data.(!w - 1) then begin
        b.data.(!w) <- b.data.(r);
        incr w
      end
    done;
    b.len <- !w
  end

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

let fold t db f init =
  let tracing = Trace.is_enabled () in
  let regs = Array.make (max 1 t.nslots) (-1) in
  let resolve = function
    | Nslot s -> regs.(s)
    | Nconst c -> c
  in
  let leaf_ok () =
    Array.for_all (fun (t1, t2) -> resolve t1 <> resolve t2) t.diseq
    && Array.for_all
         (fun na ->
           not (Plan.Db.mem db ~rel:na.nrel (Array.map resolve na.nterms)))
         t.negated
  in
  (* Variable-free atoms hold or the query is empty, once per fold. *)
  if
    not
      (Array.for_all
         (fun (rel, tup) -> Plan.Db.mem db ~rel tup)
         t.ground)
  then init
  else begin
    let nlevels = Array.length t.levels in
    (* Per-(level, source) runtime state: resolved store/column handles,
       a scratch range buffer, and — for sources whose range depends
       only on the probe key (the binary-atom common case) — a per-fold
       memo of sorted ranges. The memo is the lazy trie view: each
       flat bucket is sorted at most once per fold, exactly the sorted
       sibling lists Leapfrog-Triejoin assumes, without materializing a
       persistent second index. *)
    let state =
      Array.map
        (fun level ->
          Array.map
            (fun src ->
              let s = Plan.Db.raw_store db src.s_rel in
              let col =
                match src.s_probe with
                | Some (pos, _) -> Some (pos, Plan.Db.raw_col s pos)
                | None -> None
              in
              let memoizable =
                (not src.s_static)
                && Array.length src.s_checks = 0
                && match src.s_probe with
                   | Some (_, Kslot _) -> true
                   | _ -> false
              in
              object_state src s col memoizable)
            level.l_sources)
        t.levels
    in
    (* Collect the source's candidate range for the current prefix:
       probe (or scan), filter by the bound checks and the
       repeated-occurrence consistency of the level variable, collect
       the variable's column, then sort + dedup in place. The result is
       left in [st.cur] / [st.cur_len]. *)
    let collect st =
      let src = st.st_src in
      let b = st.st_buf in
      b.len <- 0;
      let checks = src.s_checks in
      let nchecks = Array.length checks in
      let vpos = src.s_vpos in
      let nvpos = Array.length vpos in
      let p0 = vpos.(0) in
      let consider data base =
        let ok = ref true in
        for i = 0 to nchecks - 1 do
          (match checks.(i) with
          | Cconst (p, c) -> if data.(base + p) <> c then ok := false
          | Cslot (p, sl) -> if data.(base + p) <> regs.(sl) then ok := false)
        done;
        (if !ok && nvpos > 1 then
           let v = data.(base + p0) in
           for i = 1 to nvpos - 1 do
             if data.(base + vpos.(i)) <> v then ok := false
           done);
        if !ok then buf_push b data.(base + p0)
      in
      (match st.st_col with
      | Some (pos, c) ->
        let key =
          match src.s_probe with
          | Some (_, Kconst cst) -> cst
          | Some (_, Kslot sl) -> regs.(sl)
          | None -> assert false
        in
        if tracing then Trace.incr cnt_probes;
        Plan.Db.raw_sync st.st_store c pos;
        (match st.st_memo with
        | Some memo when Hashtbl.mem memo key ->
          let arr = Hashtbl.find memo key in
          st.st_cur <- arr;
          st.st_cur_len <- Array.length arr
        | memo ->
          (match Plan.Db.raw_find c key with
          | None -> ()
          | Some bucket ->
            let data = Plan.Db.raw_data bucket in
            let blen = Plan.Db.raw_len bucket in
            let i = ref 0 in
            while !i < blen do
              let n = data.(!i) in
              if n = src.s_arity then consider data (!i + 1);
              i := !i + n + 1
            done);
          buf_finish b;
          (match memo with
          | Some memo ->
            let arr = Array.sub b.data 0 b.len in
            Hashtbl.add memo key arr;
            st.st_cur <- arr;
            st.st_cur_len <- Array.length arr
          | None ->
            st.st_cur <- b.data;
            st.st_cur_len <- b.len))
      | None ->
        if tracing then Trace.incr cnt_probes;
        let n = Plan.Db.raw_n st.st_store in
        for i = 0 to n - 1 do
          let tup = Plan.Db.raw_tuple st.st_store i in
          if Array.length tup = src.s_arity then consider tup 0
        done;
        buf_finish b;
        st.st_cur <- b.data;
        st.st_cur_len <- b.len)
    in
    (* Gallop [a]'s pointer from [lo] to the first index in [lo, len)
       holding a value >= [v]; exponential probe then binary search. *)
    let gallop a len lo v =
      if lo >= len || a.(lo) >= v then lo
      else begin
        let steps = ref 1 in
        let span = ref 1 in
        while lo + !span < len && a.(lo + !span) < v do
          incr steps;
          span := !span * 2
        done;
        (* invariant: a.(lo + span/2) < v; answer in (lo+span/2, lo+span] *)
        let lo' = ref (lo + (!span / 2)) and hi = ref (min (lo + !span) (len - 1)) in
        if a.(!hi) < v then lo' := !hi + 1 (* everything below v *)
        else begin
          (* binary search for first >= v in (lo', hi] *)
          while !hi - !lo' > 1 do
            incr steps;
            let mid = (!lo' + !hi) / 2 in
            if a.(mid) < v then lo' := mid else hi := mid
          done;
          lo' := !hi
        end;
        if tracing then Trace.add cnt_gallops !steps;
        !lo'
      end
    in
    let rec go lv acc =
      if lv >= nlevels then begin
        if tracing then Trace.incr cnt_emitted;
        if leaf_ok () then f regs acc else acc
      end
      else begin
        let sources = state.(lv) in
        let ns = Array.length sources in
        (* Fill every source's range (static ones once per fold). *)
        let empty = ref false in
        for i = 0 to ns - 1 do
          if not !empty then begin
            let st = sources.(i) in
            if st.st_src.s_static then begin
              if not st.st_ready then begin
                collect st;
                st.st_ready <- true
              end
            end
            else collect st;
            if st.st_cur_len = 0 then empty := true
          end
        done;
        if !empty || ns = 0 then acc
        else begin
          if tracing then Trace.incr cnt_intersections;
          (* Iterate the smallest range; gallop the others. The
             per-level pointer and range arrays are reused across
             prefix bindings of this level's ancestors via the scratch
             fields below. *)
          let smallest = ref 0 in
          for i = 1 to ns - 1 do
            if sources.(i).st_cur_len < sources.(!smallest).st_cur_len then
              smallest := i
          done;
          let s0 = sources.(!smallest) in
          let a0 = s0.st_cur and n0 = s0.st_cur_len in
          let acc = ref acc in
          if ns = 1 then
            for i = 0 to n0 - 1 do
              regs.(lv) <- a0.(i);
              acc := go (lv + 1) !acc;
              regs.(lv) <- -1
            done
          else begin
            let others =
              Array.init (ns - 1) (fun i ->
                  let j = if i < !smallest then i else i + 1 in
                  sources.(j))
            in
            let ptrs = Array.make (ns - 1) 0 in
            (try
               for i = 0 to n0 - 1 do
                 let v = a0.(i) in
                 let ok = ref true in
                 for j = 0 to ns - 2 do
                   if !ok then begin
                     let b = others.(j) in
                     let k = gallop b.st_cur b.st_cur_len ptrs.(j) v in
                     ptrs.(j) <- k;
                     if k >= b.st_cur_len then raise Exit (* exhausted *)
                     else if b.st_cur.(k) <> v then ok := false
                   end
                 done;
                 if !ok then begin
                   regs.(lv) <- v;
                   acc := go (lv + 1) !acc;
                   regs.(lv) <- -1
                 end
               done
             with Exit -> ());
          end;
          !acc
        end
      end
    in
    go 0 init
  end

let head_tuple t regs =
  Array.map
    (function
      | Nslot s -> regs.(s)
      | Nconst c -> c)
    t.head_terms

let valuation t regs =
  let v = ref Valuation.empty in
  Array.iteri
    (fun s var -> v := Valuation.bind var (Intern.value regs.(s)) !v)
    t.vars;
  !v
