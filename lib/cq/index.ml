open Lamp_relational

(* Hash-based secondary index over an instance: for a relation and a
   column, maps each value to the tuples carrying it there. Columns are
   indexed lazily the first time the evaluator probes them. *)

type key = {
  rel : string;
  pos : int;
}

module Kmap = Map.Make (struct
  type t = key

  let compare k1 k2 =
    let c = String.compare k1.rel k2.rel in
    if c <> 0 then c else Int.compare k1.pos k2.pos
end)

type t = {
  instance : Instance.t;
  mutable columns : Tuple.t list Value.Map.t Kmap.t;
  mutable db : Plan.Db.t option;
}

let create instance = { instance; columns = Kmap.empty; db = None }

let instance t = t.instance

(* Interned view of the same instance, for the compiled-plan engine.
   Built on first use so that index reuse across queries (eval_ucq,
   containment) also shares the interned extents and their indexes. *)
let db t =
  match t.db with
  | Some db -> db
  | None ->
    let db = Plan.Db.of_instance t.instance in
    t.db <- Some db;
    db

let column t key =
  match Kmap.find_opt key t.columns with
  | Some col -> col
  | None ->
    let col =
      Tuple.Set.fold
        (fun tup acc ->
          if key.pos >= Tuple.arity tup then acc
          else
            let v = tup.(key.pos) in
            let prev = Option.value ~default:[] (Value.Map.find_opt v acc) in
            Value.Map.add v (tup :: prev) acc)
        (Instance.tuples t.instance key.rel)
        Value.Map.empty
    in
    t.columns <- Kmap.add key col t.columns;
    col

let lookup t ~rel ~pos ~value =
  match Value.Map.find_opt value (column t { rel; pos }) with
  | Some tuples -> tuples
  | None -> []

let all t ~rel = Tuple.Set.elements (Instance.tuples t.instance rel)

let count t ~rel = Tuple.Set.cardinal (Instance.tuples t.instance rel)
