(** Worst-case-optimal join over the interned engine.

    A Leapfrog-Triejoin-style evaluator running entirely on interned
    integer ids: variables are eliminated one at a time in a
    most-constrained-first order, and each variable's candidates are
    the intersection of the sorted value ranges offered by every atom
    containing it — iterated smallest-range-first with galloping
    (exponential + binary search) probes into the others. The work is
    bounded by the AGM output bound m^ρ*, so cyclic queries (triangle,
    4-cycle, cliques) avoid the intermediate-result blowup of binary
    join plans.

    The trie view is virtual: sorted ranges are read out of the same
    flat-bucket column indexes of {!Plan.Db} that the binary-join
    evaluator probes — no second index structure is materialized, and
    ranges independent of earlier variables are computed once per fold.
    {!Generic_join} is the value-level oracle for this module:
    [Wcoj]-backed evaluation agrees with it (and with {!Eval.eval})
    bit-for-bit, which the randomized property suite checks. *)

type t

val make : ?counts:(string -> int) -> ?order:string list -> Ast.t -> t
(** Compiles [q] for the elimination order: by default greedy
    most-constrained-first (most covering atoms, then smallest total
    covering-relation cardinality per [counts], then variable name —
    fully deterministic), with consecutive variables kept connected
    when possible. [order] overrides it.
    @raise Invalid_argument on an [order] that does not enumerate the
    body variables. *)

val atom_count : t -> int
val head_rel : t -> string

val var_order : t -> string list
(** The elimination order the plan was compiled for. *)

val fold : t -> Plan.Db.t -> (int array -> 'a -> 'a) -> 'a -> 'a
(** Folds over all satisfying assignments; the register array (value
    id per elimination position) is reused between calls — copy or
    convert via {!head_tuple} / {!valuation} before retaining.
    Disequalities and negated atoms are checked against [db] at the
    leaves, exactly as {!Plan.fold} does. *)

val head_tuple : t -> int array -> int array
val valuation : t -> int array -> Valuation.t
