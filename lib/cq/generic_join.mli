(** Worst-case optimal (generic) join.

    The multiway join algorithm in the NPRR / Leapfrog-Triejoin style:
    variables are bound one at a time and each variable's candidates are
    the {e intersection} of the value sets offered by all atoms
    containing it, iterated smallest-set-first. Unlike any binary join
    plan, the work is bounded by the AGM bound m^ρ* — this is the
    sequential algorithm Chu–Balazinska–Suciu [26] combine with
    HyperCube for the paper's Section 3.1 empirical discussion, and
    [39]'s building block for worst-case optimal parallel processing. *)

open Lamp_relational

val default_order : Ast.t -> string list
(** Most-constrained-first variable order: variables covered by more
    body atoms come first, ties broken by variable name (ascending).
    Deterministic — a pure function of the query, never of hash or
    iteration order — so the oracle runs the {!Wcoj} property suite
    compares against are reproducible. *)

val eval : ?order:string list -> Ast.t -> Instance.t -> Instance.t
(** Evaluates a positive CQ (inequalities allowed); agrees with
    {!Eval.eval} on every query and instance, which the test suite
    checks by property.
    @raise Invalid_argument on CQ¬ or on an [order] that does not
    enumerate the body variables. *)

val fold :
  ?order:string list -> Ast.t -> Index.t -> (Valuation.t -> 'a -> 'a) -> 'a -> 'a
(** Folds over all satisfying valuations, reusing a prebuilt index. *)
