(** Compiled CQ plans over interned tuples.

    A query compiles once into integer slots and per-atom match
    programs over [int array] tuples (dense {!Lamp_relational.Intern}
    ids); every comparison in the inner join loop is an integer
    operation. The probe position of each atom is chosen statically —
    the bound-slot set at any point of the join order is known at
    compile time. The evaluator in {!Eval} and the Datalog fixpoint
    engine both run on these plans. *)

open Lamp_relational

(** Mutable interned-tuple database: per-relation extents (append-only
    arrays of interned tuples with O(1) duplicate detection) and lazy
    per-column hash indexes that are extended incrementally as deltas
    are appended — never rebuilt. *)
module Db : sig
  type t

  val create : unit -> t
  val of_instance : Instance.t -> t

  val add : t -> rel:string -> int array -> bool
  (** Appends an interned tuple; [false] if it was already present. *)

  val mem : t -> rel:string -> int array -> bool
  val count : t -> string -> int

  val probe : t -> rel:string -> pos:int -> key:int -> int array list
  (** Tuples of [rel] whose column [pos] holds value id [key]. Builds
      or extends the column index as needed. *)

  val fold_extent : t -> string -> ('a -> int array -> 'a) -> 'a -> 'a

  val replace : t -> rel:string -> int array list -> unit
  (** Replaces a relation's whole extent (used for per-round delta
      relations); its indexes are dropped and rebuilt lazily. *)

  val to_instance : ?keep:(string -> bool) -> t -> Instance.t

  (** {2 Raw column access}

      Zero-copy handles into a relation's extent and its flat-bucket
      column indexes, for the {!Wcoj} leapfrog backend: handles are
      resolved once per fold and buckets are then read in place (the
      record layout is [arity, v0, ..., v_{arity-1}]), so the
      worst-case-optimal join runs on exactly the same index structure
      as the binary-join plans — nothing is materialized twice. *)

  type raw_store
  type raw_col
  type raw_bucket

  val raw_store : t -> string -> raw_store
  (** The relation's store, created empty if absent. *)

  val raw_n : raw_store -> int
  (** Number of tuples in the extent. *)

  val raw_tuple : raw_store -> int -> int array
  (** The i-th extent tuple, in place — do not mutate. *)

  val raw_col : raw_store -> int -> raw_col
  (** The column index at a position, built or incrementally extended
      to cover the current extent. *)

  val raw_sync : raw_store -> raw_col -> int -> unit
  (** Re-extends the column index if the extent grew since {!raw_col}
      (the [pos] must be the one the handle was resolved at). *)

  val raw_find : raw_col -> int -> raw_bucket option
  (** The bucket of tuples holding the given value id at the handle's
      column, if any. *)

  val raw_data : raw_bucket -> int array
  val raw_len : raw_bucket -> int
end

type t

val make : ?counts:(string -> int) -> Ast.t -> t
(** Compiles [q], ordering body atoms greedily by [counts] (relation
    cardinality estimates; default all zero). Duplicate body atoms —
    even physically shared ones — each keep their own join step. *)

val atom_count : t -> int
(** Number of join steps (= body atoms) in the compiled plan. *)

val head_rel : t -> string

val fold : t -> Db.t -> (int array -> 'a -> 'a) -> 'a -> 'a
(** Folds over all satisfying assignments. The [int array] of value
    ids per slot passed to the callback is reused between calls — copy
    it (or convert via {!head_tuple} / {!valuation}) before
    retaining. Disequalities and negated atoms are checked against
    [db] at the leaves. *)

val head_tuple : t -> int array -> int array
(** The interned head tuple derived by a register assignment. *)

val derive : t -> Db.t -> int array list
(** Evaluates the plan, adding every derived head tuple to [db]'s
    head relation as it is found, and returns the genuinely new
    tuples. Duplicate derivations allocate nothing: the head is
    resolved into a scratch buffer and checked against the extent's
    duplicate table before being copied. *)

val valuation : t -> int array -> Valuation.t
(** The {!Valuation.t} a register assignment denotes (conversion at
    the leaves — the engine never manipulates valuation maps). *)
