(** Compiled CQ plans over interned tuples.

    A query compiles once into integer slots and per-atom match
    programs over [int array] tuples (dense {!Lamp_relational.Intern}
    ids); every comparison in the inner join loop is an integer
    operation. The probe position of each atom is chosen statically —
    the bound-slot set at any point of the join order is known at
    compile time. The evaluator in {!Eval} and the Datalog fixpoint
    engine both run on these plans. *)

open Lamp_relational

(** Mutable interned-tuple database: per-relation extents (append-only
    arrays of interned tuples with O(1) duplicate detection) and lazy
    per-column hash indexes that are extended incrementally as deltas
    are appended — never rebuilt. *)
module Db : sig
  type t

  val create : unit -> t
  val of_instance : Instance.t -> t

  val add : t -> rel:string -> int array -> bool
  (** Appends an interned tuple; [false] if it was already present. *)

  val mem : t -> rel:string -> int array -> bool
  val count : t -> string -> int

  val probe : t -> rel:string -> pos:int -> key:int -> int array list
  (** Tuples of [rel] whose column [pos] holds value id [key]. Builds
      or extends the column index as needed. *)

  val fold_extent : t -> string -> ('a -> int array -> 'a) -> 'a -> 'a

  val replace : t -> rel:string -> int array list -> unit
  (** Replaces a relation's whole extent (used for per-round delta
      relations); its indexes are dropped and rebuilt lazily. *)

  val to_instance : ?keep:(string -> bool) -> t -> Instance.t
end

type t

val make : ?counts:(string -> int) -> Ast.t -> t
(** Compiles [q], ordering body atoms greedily by [counts] (relation
    cardinality estimates; default all zero). Duplicate body atoms —
    even physically shared ones — each keep their own join step. *)

val atom_count : t -> int
(** Number of join steps (= body atoms) in the compiled plan. *)

val head_rel : t -> string

val fold : t -> Db.t -> (int array -> 'a -> 'a) -> 'a -> 'a
(** Folds over all satisfying assignments. The [int array] of value
    ids per slot passed to the callback is reused between calls — copy
    it (or convert via {!head_tuple} / {!valuation}) before
    retaining. Disequalities and negated atoms are checked against
    [db] at the leaves. *)

val head_tuple : t -> int array -> int array
(** The interned head tuple derived by a register assignment. *)

val derive : t -> Db.t -> int array list
(** Evaluates the plan, adding every derived head tuple to [db]'s
    head relation as it is found, and returns the genuinely new
    tuples. Duplicate derivations allocate nothing: the head is
    resolved into a scratch buffer and checked against the extent's
    duplicate table before being copied. *)

val valuation : t -> int array -> Valuation.t
(** The {!Valuation.t} a register assignment denotes (conversion at
    the leaves — the engine never manipulates valuation maps). *)
