(** Lazy per-column hash indexes over an instance, used by the CQ
    evaluator to probe candidate tuples for partially bound atoms. *)

open Lamp_relational

type t

val create : Instance.t -> t
val instance : t -> Instance.t

val db : t -> Plan.Db.t
(** The interned-tuple view of the same instance, built on first use
    and cached — the compiled-plan engine ({!Eval}) runs on it. *)

val lookup : t -> rel:string -> pos:int -> value:Value.t -> Tuple.t list
(** Tuples of [rel] whose column [pos] holds [value]. Builds the column
    index on first use. *)

val all : t -> rel:string -> Tuple.t list
val count : t -> rel:string -> int
