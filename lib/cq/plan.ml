open Lamp_relational
module Trace = Lamp_obs.Trace

(* Profiling counters (lamp.obs): all increments either go through
   [Trace.incr] (a single gated atomic) on cold paths, or are guarded
   by a [Trace.is_enabled] flag hoisted out of the loop on hot ones —
   evaluation with tracing off runs the exact same instruction stream
   as before the counters existed. *)
let cnt_probes = Trace.counter "cq.probes"
let cnt_probe_misses = Trace.counter "cq.probe_misses"
let cnt_scans = Trace.counter "cq.scans"
let cnt_index_builds = Trace.counter "cq.index_builds"
let cnt_index_extends = Trace.counter "cq.index_extends"
let cnt_dedup_fresh = Trace.counter "cq.dedup_fresh"
let cnt_dedup_hits = Trace.counter "cq.dedup_hits"

let () =
  let module M = Lamp_obs.Metrics in
  M.describe ~kind:M.Counter ~help:"Index probes issued by join steps"
    "cq.probes";
  M.describe ~kind:M.Counter ~help:"Index probes that found no bucket"
    "cq.probe_misses";
  M.describe ~kind:M.Counter ~help:"Full-relation scans (no usable index)"
    "cq.scans";
  M.describe ~kind:M.Counter ~help:"Column indexes built" "cq.index_builds";
  M.describe ~kind:M.Counter ~help:"Incremental index extensions"
    "cq.index_extends";
  M.describe ~kind:M.Counter ~help:"Output tuples seen for the first time"
    "cq.dedup_fresh";
  M.describe ~kind:M.Counter ~help:"Output tuples suppressed as duplicates"
    "cq.dedup_hits"

(* Compiled CQ plans over interned tuples.

   A query is compiled once: variables become integer slots, each body
   atom becomes a match program over [int array] tuples (interned value
   ids), and the probe position of every atom is fixed statically —
   the set of slots bound when an atom is reached is known at compile
   time, so the "first bound position" the backtracking evaluator picks
   at runtime is a compile-time constant. All equality tests in the
   inner join loop are integer comparisons. *)

(* ------------------------------------------------------------------ *)
(* Interned tuple store                                                *)

module Itup = struct
  type t = int array

  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  (* FNV-1a with a final avalanche step: interned ids are small and
     dense, so a polynomial hash would collapse onto a narrow band and
     degenerate the [seen] buckets on large extents. *)
  let hash a =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor a.(i)) * 0x01000193
    done;
    let h = !h in
    (h lxor (h lsr 17)) land max_int
end

module Htup = Hashtbl.Make (Itup)

(* Open-addressing set of (packed-tuple) ints, linear probing, -1 as
   the empty slot. One flat array, so a membership test — the single
   hottest operation of the Datalog fixpoint, run once per derivation —
   costs one random memory access, where a chained hash table costs two
   or three dependent ones. *)
module Iset = struct
  type t = {
    mutable slots : int array;
    mutable count : int;
    mutable mask : int;
  }

  let create () = { slots = Array.make 256 (-1); count = 0; mask = 255 }

  let ix t k =
    let h = (k lxor (k lsr 33)) * 0x9E3779B97F4A7C1 in
    (h lxor (h lsr 29)) land t.mask

  (* Index of [k], or [-(free slot) - 1] when absent. *)
  let rec probe t k i =
    let s = t.slots.(i) in
    if s = -1 then -i - 1
    else if s = k then i
    else probe t k ((i + 1) land t.mask)

  let mem t k = probe t k (ix t k) >= 0

  let grow t =
    let old = t.slots in
    t.mask <- (2 * (t.mask + 1)) - 1;
    t.slots <- Array.make (t.mask + 1) (-1);
    Array.iter
      (fun k -> if k <> -1 then t.slots.(-probe t k (ix t k) - 1) <- k)
      old

  let add t k =
    let i = probe t k (ix t k) in
    if i >= 0 then false
    else begin
      t.slots.(-i - 1) <- k;
      t.count <- t.count + 1;
      if 2 * t.count > t.mask then grow t;
      true
    end
end

module Db = struct
  (* Per-column secondary index. Built lazily on first probe, then
     extended incrementally: [upto] marks how many of the relation's
     tuples have been folded in, so appending a delta never rebuilds
     the index — the Datalog engine relies on this.

     Buckets are flat int arrays of [arity, v0, ..., v_{arity-1}]
     records — candidate tuples are copied in, so the evaluator's inner
     loop reads memory sequentially instead of chasing a list cell and
     a tuple pointer per candidate. *)
  type bucket = {
    mutable bdata : int array;
    mutable blen : int;
  }

  type col = {
    tbl : (int, bucket) Hashtbl.t;
    mutable upto : int;
  }

  let bucket_push b tup =
    let n = Array.length tup in
    let need = b.blen + n + 1 in
    if need > Array.length b.bdata then begin
      let bigger = Array.make (max 16 (2 * need)) 0 in
      Array.blit b.bdata 0 bigger 0 b.blen;
      b.bdata <- bigger
    end;
    b.bdata.(b.blen) <- n;
    Array.blit tup 0 b.bdata (b.blen + 1) n;
    b.blen <- need

  type store = {
    mutable tuples : int array array;
    mutable n : int;
    seen : unit Htup.t; (* tuples the packed key cannot represent *)
    seen_p : Iset.t; (* packed-key duplicates *)
    (* Arity-2 fast path: a dynamic bitset matrix [bs_rows.(v0)] over
       second components. A membership test on it touches ~32KB-scale
       structures that stay cache-resident where the general tables
       cannot — and it is the single hottest operation of a Datalog
       fixpoint. Capped by [bs_budget] total words: once exceeded,
       [bs_on] goes false, new pairs flow to [seen_p], and the rows
       already allocated stay valid for membership. *)
    mutable bs_rows : int array array;
    mutable bs_words : int;
    mutable bs_on : bool;
    (* [false] while the extent is known duplicate-free and nothing
       has queried membership: [of_instance] loads from a [Tuple.Set]
       without paying for any of the structures above, and a store
       that is only ever scanned or probed (an EDB relation, a
       one-shot join input) never builds them at all. The first
       [add]/[mem] replays the extent. *)
    mutable dedup : bool;
    mutable cols : col option array;
  }

  type t = { rels : (string, store) Hashtbl.t }

  let create () = { rels = Hashtbl.create 16 }

  (* 16M words = 128MB across one store, far beyond any dense extent
     the benchmarks touch; sparse id spaces trip it early and fall back
     to the open-addressing set. *)
  let bs_budget = 1 lsl 21

  (* Ids addressable by the bitset matrix: bounds both the rows array
     and a single row's word count. *)
  let bs_max_id = 1 lsl 25

  let fresh_store () =
    {
      tuples = Array.make 16 [||];
      n = 0;
      seen = Htup.create 16;
      seen_p = Iset.create ();
      bs_rows = [||];
      bs_words = 0;
      bs_on = true;
      dedup = true;
      cols = [||];
    }

  let store t rel =
    match Hashtbl.find_opt t.rels rel with
    | Some s -> s
    | None ->
      let s = fresh_store () in
      Hashtbl.add t.rels rel s;
      s

  let find_store t rel = Hashtbl.find_opt t.rels rel

  (* Short tuples of small ids — the overwhelmingly common case, since
     interned ids are dense — pack injectively into one tagged native
     int, so duplicate detection on the hot path is an int-keyed table
     lookup with no allocation. [-1] means not packable (the arity tag
     keeps, say, a packed pair and a packed triple distinct). *)
  let pack tup =
    match Array.length tup with
    | 1 ->
      let v = tup.(0) in
      if v < 0x400_0000_0000_0000 then (v lsl 2) lor 1 else -1
    | 2 ->
      let v0 = tup.(0) and v1 = tup.(1) in
      if v0 lor v1 < 0x2000_0000 then (((v0 lsl 29) lor v1) lsl 2) lor 2
      else -1
    | 3 ->
      let v0 = tup.(0) and v1 = tup.(1) and v2 = tup.(2) in
      if v0 lor v1 lor v2 < 0x8_0000 then
        (((((v0 lsl 19) lor v1) lsl 19) lor v2) lsl 2) lor 3
      else -1
    | _ -> -1

  let append s tup =
    if s.n = Array.length s.tuples then begin
      let bigger = Array.make (max 16 (2 * s.n)) [||] in
      Array.blit s.tuples 0 bigger 0 s.n;
      s.tuples <- bigger
    end;
    s.tuples.(s.n) <- tup;
    s.n <- s.n + 1

  (* Bit (v0, v1) already set in the matrix? 32 bits per word: OCaml
     ints are 63-bit, so a 64-bit packing would silently lose bit 63
     ([1 lsl 63] is 0) and un-record every pair with [v1 = 63 mod 64]. *)
  let bs_mem s v0 v1 =
    v0 < Array.length s.bs_rows
    &&
    let row = s.bs_rows.(v0) in
    let w = v1 lsr 5 in
    w < Array.length row && row.(w) land (1 lsl (v1 land 31)) <> 0

  (* Try to record (v0, v1) in the matrix: [true] when set (it was
     fresh), [false] when the budget ran out — the caller must fall
     back to the packed set. Never called when the bit is already
     set. *)
  let bs_set s v0 v1 =
    let rows_len = Array.length s.bs_rows in
    let ok_rows =
      v0 < rows_len
      ||
      let need = max 16 (2 * (v0 + 1)) in
      s.bs_words + need - rows_len <= bs_budget
      && begin
        let bigger = Array.make need [||] in
        Array.blit s.bs_rows 0 bigger 0 rows_len;
        s.bs_words <- s.bs_words + need - rows_len;
        s.bs_rows <- bigger;
        true
      end
    in
    ok_rows
    &&
    let row = s.bs_rows.(v0) in
    let row_len = Array.length row in
    let w = v1 lsr 5 in
    let ok_row =
      w < row_len
      ||
      let need = max 4 (2 * (w + 1)) in
      s.bs_words + need - row_len <= bs_budget
      && begin
        let bigger = Array.make need 0 in
        Array.blit row 0 bigger 0 row_len;
        s.bs_words <- s.bs_words + need - row_len;
        s.bs_rows.(v0) <- bigger;
        true
      end
    in
    ok_row
    && begin
      let row = s.bs_rows.(v0) in
      row.(w) <- row.(w) lor (1 lsl (v1 land 31));
      true
    end

  (* Record a (pre-checked absent) pair in the matrix if it is on and
     within budget, in the packed set otherwise. *)
  let record2 s v0 v1 =
    if not (s.bs_on && bs_set s v0 v1) then begin
      if s.bs_on then s.bs_on <- false;
      ignore (Iset.add s.seen_p ((((v0 lsl 29) lor v1) lsl 2) lor 2))
    end

  (* Record an extent tuple in the duplicate structures (no append). *)
  let record_store s tup =
    if Array.length tup = 2 && tup.(0) lor tup.(1) < bs_max_id then
      record2 s tup.(0) tup.(1)
    else
      let k = pack tup in
      if k >= 0 then ignore (Iset.add s.seen_p k)
      else Htup.replace s.seen tup ()

  let ensure_dedup s =
    if not s.dedup then begin
      s.dedup <- true;
      for i = 0 to s.n - 1 do
        record_store s s.tuples.(i)
      done
    end

  let mem_store s tup =
    ensure_dedup s;
    if Array.length tup = 2 then begin
      let v0 = tup.(0) and v1 = tup.(1) in
      if v0 lor v1 < bs_max_id then
        bs_mem s v0 v1
        || Iset.mem s.seen_p ((((v0 lsl 29) lor v1) lsl 2) lor 2)
      else
        let k = pack tup in
        if k >= 0 then Iset.mem s.seen_p k else Htup.mem s.seen tup
    end
    else
      let k = pack tup in
      if k >= 0 then Iset.mem s.seen_p k else Htup.mem s.seen tup

  let add_store s tup =
    ensure_dedup s;
    if Array.length tup = 2 && tup.(0) lor tup.(1) < bs_max_id then begin
      let v0 = tup.(0) and v1 = tup.(1) in
      if
        bs_mem s v0 v1
        || Iset.mem s.seen_p ((((v0 lsl 29) lor v1) lsl 2) lor 2)
      then false
      else begin
        record2 s v0 v1;
        append s tup;
        true
      end
    end
    else
      let k = pack tup in
      if k >= 0 then
        if not (Iset.add s.seen_p k) then false
        else begin
          append s tup;
          true
        end
      else if Htup.mem s.seen tup then false
      else begin
        Htup.add s.seen tup ();
        append s tup;
        true
      end

  (* As [add_store], but [buf] is a caller-owned scratch buffer: it is
     only copied when the tuple turns out to be fresh, so a derivation
     that is a duplicate — the common case near a fixpoint — costs one
     cache-resident bit test and zero allocations. *)
  let add_copy s buf =
    ensure_dedup s;
    if Array.length buf = 2 && buf.(0) lor buf.(1) < bs_max_id then begin
      let v0 = buf.(0) and v1 = buf.(1) in
      if
        bs_mem s v0 v1
        || Iset.mem s.seen_p ((((v0 lsl 29) lor v1) lsl 2) lor 2)
      then None
      else begin
        record2 s v0 v1;
        let tup = Array.copy buf in
        append s tup;
        Some tup
      end
    end
    else
      let k = pack buf in
      if k >= 0 then
        if not (Iset.add s.seen_p k) then None
        else begin
          let tup = Array.copy buf in
          append s tup;
          Some tup
        end
      else if Htup.mem s.seen buf then None
      else begin
        let tup = Array.copy buf in
        Htup.add s.seen tup ();
        append s tup;
        Some tup
      end

  let add t ~rel tup = add_store (store t rel) tup

  let mem t ~rel tup =
    match find_store t rel with
    | None -> false
    | Some s -> mem_store s tup

  let count t rel =
    match find_store t rel with
    | None -> 0
    | Some s -> s.n

  let col s pos =
    if pos >= Array.length s.cols then begin
      let bigger = Array.make (pos + 1) None in
      Array.blit s.cols 0 bigger 0 (Array.length s.cols);
      s.cols <- bigger
    end;
    let c =
      match s.cols.(pos) with
      | Some c ->
        if c.upto < s.n then Trace.incr cnt_index_extends;
        c
      | None ->
        Trace.incr cnt_index_builds;
        let c = { tbl = Hashtbl.create 64; upto = 0 } in
        s.cols.(pos) <- Some c;
        c
    in
    for i = c.upto to s.n - 1 do
      let tup = s.tuples.(i) in
      if pos < Array.length tup then begin
        let k = tup.(pos) in
        let b =
          match Hashtbl.find_opt c.tbl k with
          | Some b -> b
          | None ->
            let b = { bdata = [||]; blen = 0 } in
            Hashtbl.add c.tbl k b;
            b
        in
        bucket_push b tup
      end
    done;
    c.upto <- s.n;
    c

  (* The evaluator's probe: the raw bucket, iterated in place. *)
  let probe_bucket t ~rel ~pos ~key =
    match find_store t rel with
    | None -> None
    | Some s -> Hashtbl.find_opt (col s pos).tbl key

  let probe t ~rel ~pos ~key =
    match probe_bucket t ~rel ~pos ~key with
    | None -> []
    | Some b ->
      let out = ref [] in
      let i = ref 0 in
      while !i < b.blen do
        let n = b.bdata.(!i) in
        out := Array.sub b.bdata (!i + 1) n :: !out;
        i := !i + n + 1
      done;
      List.rev !out

  let fold_extent t rel f init =
    match find_store t rel with
    | None -> init
    | Some s ->
      let acc = ref init in
      for i = 0 to s.n - 1 do
        acc := f !acc s.tuples.(i)
      done;
      !acc

  let replace t ~rel tuples =
    let s = fresh_store () in
    Hashtbl.replace t.rels rel s;
    List.iter (fun tup -> ignore (add_store s tup)) tuples

  let of_instance instance =
    let t = create () in
    List.iter
      (fun rel ->
        let s = store t rel in
        (* Set members are distinct: load without duplicate structures
           ([dedup] false); the first [add]/[mem] on this store — if
           one ever comes — replays the extent into them. *)
        Tuple.Set.iter
          (fun tup -> append s (Intern.tuple tup))
          (Instance.tuples instance rel);
        s.dedup <- false)
      (Instance.relations instance);
    t

  (* Raw zero-copy handles for the leapfrog backend ({!Wcoj}): the
     store and its flat-bucket column indexes, resolved once per fold
     and then read in place — no per-probe list materialization, no
     second index structure. *)
  type raw_store = store
  type raw_col = col
  type raw_bucket = bucket

  let raw_store = store
  let raw_n (s : raw_store) = s.n
  let raw_tuple (s : raw_store) i = s.tuples.(i)
  let raw_col (s : raw_store) pos : raw_col = col s pos

  let raw_sync (s : raw_store) (c : raw_col) pos =
    if c.upto < s.n then ignore (col s pos)

  let raw_find (c : raw_col) key : raw_bucket option =
    Hashtbl.find_opt c.tbl key

  let raw_data (b : raw_bucket) = b.bdata
  let raw_len (b : raw_bucket) = b.blen

  let to_instance ?(keep = fun _ -> true) t =
    Hashtbl.fold
      (fun rel s acc ->
        if (not (keep rel)) || s.n = 0 then acc
        else begin
          let tups = ref [] in
          for i = s.n - 1 downto 0 do
            tups := Intern.untuple s.tuples.(i) :: !tups
          done;
          Instance.add_tuple_set rel (Tuple.Set.of_list !tups) acc
        end)
      t.rels Instance.empty
end

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

type probe_key =
  | Kconst of int
  | Kslot of int

type op =
  | Bind of int * int (* position, slot: first occurrence of a variable *)
  | Check of int * int (* position, slot: variable already bound *)
  | Konst of int * int (* position, constant id *)

type atom_plan = {
  rel : string;
  arity : int;
  probe : (int * probe_key) option;
  ops : op array;
  binds : int array; (* slots this atom binds, reset on backtrack *)
}

type nterm =
  | Nslot of int
  | Nconst of int

type natom = {
  nrel : string;
  nterms : nterm array;
}

type t = {
  nslots : int;
  vars : string array; (* slot -> variable name *)
  atoms : atom_plan array;
  negated : natom array;
  diseq : (nterm * nterm) array;
  head_rel : string;
  head_terms : nterm array;
}

let atom_count t = Array.length t.atoms
let head_rel t = t.head_rel

(* Greedy join order, as the evaluator always used: start from the
   smallest relation, then repeatedly pick an atom sharing a variable
   with the bound set (preferring small relations), falling back to the
   smallest unconnected atom for cartesian products. The chosen atom is
   removed by position — removing with [List.filter (!=)] dropped every
   physically shared duplicate of the chosen atom at once, silently
   skipping join steps. *)
let order_atoms ~counts atoms =
  let module Sset = Set.Make (String) in
  let size (a : Ast.atom) = counts a.Ast.rel in
  let remove_nth n l = List.filteri (fun i _ -> i <> n) l in
  let rec pick bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let indexed = List.mapi (fun i a -> (i, a)) remaining in
      let connected, rest =
        List.partition
          (fun (_, a) ->
            List.exists (fun v -> Sset.mem v bound) (Ast.atom_vars a)
            || Ast.atom_vars a = [])
          indexed
      in
      let pool = if connected <> [] then connected else rest in
      let best =
        List.fold_left
          (fun best (i, a) ->
            match best with
            | None -> Some (i, a)
            | Some (_, b) -> if size a < size b then Some (i, a) else best)
          None pool
      in
      (match best with
      | None -> List.rev acc
      | Some (i, a) ->
        let bound =
          List.fold_left (fun s v -> Sset.add v s) bound (Ast.atom_vars a)
        in
        pick bound (remove_nth i remaining) (a :: acc))
  in
  pick Sset.empty atoms []

let make ?counts q =
  let counts = Option.value ~default:(fun _ -> 0) counts in
  let ordered = order_atoms ~counts (Ast.body q) in
  let slot_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let vars = ref [] in
  let nslots = ref 0 in
  let slot_of v =
    match Hashtbl.find_opt slot_tbl v with
    | Some s -> s
    | None ->
      let s = !nslots in
      Hashtbl.add slot_tbl v s;
      vars := v :: !vars;
      incr nslots;
      s
  in
  let bound : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let compile_atom (a : Ast.atom) =
    (* The probe uses only constants and slots bound by earlier atoms:
       scan before this atom's own bindings are recorded. *)
    let probe =
      let rec find i = function
        | [] -> None
        | Ast.Const c :: _ -> Some (i, Kconst (Intern.id c))
        | Ast.Var v :: rest -> (
          match Hashtbl.find_opt slot_tbl v with
          | Some s when Hashtbl.mem bound s -> Some (i, Kslot s)
          | _ -> find (i + 1) rest)
      in
      find 0 a.Ast.terms
    in
    let binds = ref [] in
    let ops =
      List.mapi
        (fun i t ->
          match t with
          | Ast.Const c -> Konst (i, Intern.id c)
          | Ast.Var v ->
            let s = slot_of v in
            if Hashtbl.mem bound s then Check (i, s)
            else begin
              Hashtbl.add bound s ();
              binds := s :: !binds;
              Bind (i, s)
            end)
        a.Ast.terms
    in
    (* Every tuple in a probed bucket already matches the probe
       position, so the Check/Konst op there is redundant. (The probe
       never selects an unbound variable, so no Bind is dropped.) *)
    let ops =
      match probe with
      | None -> ops
      | Some (j, _) -> List.filteri (fun i _ -> i <> j) ops
    in
    {
      rel = a.Ast.rel;
      arity = List.length a.Ast.terms;
      probe;
      ops = Array.of_list ops;
      binds = Array.of_list (List.rev !binds);
    }
  in
  let atoms = Array.of_list (List.map compile_atom ordered) in
  let nterm = function
    | Ast.Const c -> Nconst (Intern.id c)
    | Ast.Var v -> (
      match Hashtbl.find_opt slot_tbl v with
      | Some s -> Nslot s
      | None ->
        (* Unreachable on queries built with Ast.make, which enforces
           safety; fail loudly rather than read an unbound slot. *)
        invalid_arg (Fmt.str "Plan.make: unsafe variable %s" v))
  in
  let natom (a : Ast.atom) =
    { nrel = a.Ast.rel; nterms = Array.of_list (List.map nterm a.Ast.terms) }
  in
  let head = Ast.head q in
  {
    nslots = !nslots;
    vars = Array.of_list (List.rev !vars);
    atoms;
    negated = Array.of_list (List.map natom (Ast.negated q));
    diseq =
      Array.of_list
        (List.map (fun (t1, t2) -> (nterm t1, nterm t2)) (Ast.diseq q));
    head_rel = head.Ast.rel;
    head_terms = Array.of_list (List.map nterm head.Ast.terms);
  }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

(* The evaluator: one closure per atom, built once per [fold] call and
   chained statically — the inner loop allocates nothing, reads bucket
   records sequentially, and every comparison is on immediate ints. *)
let fold plan db f init =
  (* Hoisted once per fold: with tracing off the step closures below
     contain no counter code at all. *)
  let tracing = Trace.is_enabled () in
  let regs = Array.make (max 1 plan.nslots) (-1) in
  let resolve = function
    | Nslot s -> regs.(s)
    | Nconst c -> c
  in
  let leaf_ok () =
    Array.for_all (fun (t1, t2) -> resolve t1 <> resolve t2) plan.diseq
    && Array.for_all
         (fun na -> not (Db.mem db ~rel:na.nrel (Array.map resolve na.nterms)))
         plan.negated
  in
  let natoms = Array.length plan.atoms in
  let steps = Array.make (natoms + 1) (fun acc -> acc) in
  steps.(natoms) <-
    (if Array.length plan.diseq = 0 && Array.length plan.negated = 0 then
       fun acc -> f regs acc
     else fun acc -> if leaf_ok () then f regs acc else acc);
  for k = natoms - 1 downto 0 do
    let ap = plan.atoms.(k) in
    let next = steps.(k + 1) in
    let ops = ap.ops in
    let nops = Array.length ops in
    let binds = ap.binds in
    let nbinds = Array.length binds in
    let arity = ap.arity in
    (* Match a candidate laid out at [data.(base) ..]: every op is an
       integer comparison or register store. *)
    let rec run data base i =
      i >= nops
      ||
      match ops.(i) with
      | Bind (p, s) ->
        regs.(s) <- data.(base + p);
        run data base (i + 1)
      | Check (p, s) -> regs.(s) = data.(base + p) && run data base (i + 1)
      | Konst (p, c) -> data.(base + p) = c && run data base (i + 1)
    in
    let try_at acc data base n =
      if n <> arity then acc
      else begin
        let acc = if run data base 0 then next acc else acc in
        for i = 0 to nbinds - 1 do
          regs.(binds.(i)) <- -1
        done;
        acc
      end
    in
    (* The relation's store and column index are resolved once here,
       not once per probe: probing is an int-keyed lookup plus an
       up-to-date check for in-fold appends. *)
    let s = Db.store db ap.rel in
    steps.(k) <-
      (match ap.probe with
      | Some (pos, key) ->
        let c = Db.col s pos in
        fun acc ->
          let key =
            match key with
            | Kconst cst -> cst
            | Kslot sl -> regs.(sl)
          in
          if tracing then Trace.incr cnt_probes;
          if c.Db.upto < s.Db.n then ignore (Db.col s pos);
          (match Hashtbl.find_opt c.Db.tbl key with
          | None ->
            if tracing then Trace.incr cnt_probe_misses;
            acc
          | Some b ->
            (* Snapshot: recursive steps may append to this bucket (the
               Datalog engine adds derivations in-round); the captured
               array keeps the pre-snapshot records valid even if
               growth swaps [bdata]. *)
            let data = b.Db.bdata and blen = b.Db.blen in
            let rec walk i acc =
              if i >= blen then acc
              else
                let n = data.(i) in
                walk (i + n + 1) (try_at acc data (i + 1) n)
            in
            walk 0 acc)
      | None ->
        fun acc ->
          if tracing then Trace.incr cnt_scans;
          let tuples = s.Db.tuples and sn = s.Db.n in
          let rec walk i acc =
            if i >= sn then acc
            else
              let tup = tuples.(i) in
              walk (i + 1) (try_at acc tup 0 (Array.length tup))
          in
          walk 0 acc)
  done;
  steps.(0) init

let head_tuple plan regs = Array.map (function
  | Nslot s -> regs.(s)
  | Nconst c -> c)
  plan.head_terms

(* Evaluate [plan], adding every derived head tuple to [db] as it is
   found; returns the genuinely new tuples. The head is resolved into a
   reused scratch buffer that is only copied when fresh, so duplicate
   derivations — the common case near a fixpoint — allocate nothing. *)
let derive plan db =
  let tracing = Trace.is_enabled () in
  let s = Db.store db plan.head_rel in
  let ht = plan.head_terms in
  let buf = Array.make (Array.length ht) 0 in
  fold plan db
    (fun regs fresh ->
      for i = 0 to Array.length ht - 1 do
        buf.(i) <- (match ht.(i) with Nslot sl -> regs.(sl) | Nconst c -> c)
      done;
      match Db.add_copy s buf with
      | Some tup ->
        if tracing then Trace.incr cnt_dedup_fresh;
        tup :: fresh
      | None ->
        if tracing then Trace.incr cnt_dedup_hits;
        fresh)
    []

let valuation plan regs =
  let v = ref Valuation.empty in
  Array.iteri
    (fun s var -> v := Valuation.bind var (Intern.value regs.(s)) !v)
    plan.vars;
  !v
