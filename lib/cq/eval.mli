(** Evaluation of conjunctive queries (with optional negation and
    inequalities) over instances.

    The evaluator compiles the query to a {!Plan} — variables as
    integer slots, interned-tuple match programs, statically chosen
    index probes — and backtracks over the greedily ordered body with
    integer comparisons only. Negated atoms and inequalities are
    checked once all body variables are bound (safety guarantees they
    are). The pre-compilation evaluator survives as {!Reference}, the
    oracle for equivalence tests and old-vs-new benchmarks. *)

open Lamp_relational

val fold_valuations :
  Ast.t -> Instance.t -> (Valuation.t -> 'a -> 'a) -> 'a -> 'a
(** Folds over all satisfying valuations of the query. *)

val fold_valuations_idx :
  Ast.t -> Index.t -> (Valuation.t -> 'a -> 'a) -> 'a -> 'a
(** As {!fold_valuations} over a pre-built index, allowing index reuse
    across queries on the same instance. *)

val valuations : Ast.t -> Instance.t -> Valuation.t list
(** All satisfying valuations of [q] on the instance. *)

val eval : Ast.t -> Instance.t -> Instance.t
(** [eval q i] is [Q(I)]: the set of facts derived by satisfying
    valuations. *)

val eval_idx : Ast.t -> Index.t -> Instance.t

val eval_ucq : Ast.t list -> Instance.t -> Instance.t
(** Union of the results of the disjuncts. *)

val holds : Ast.t -> Instance.t -> bool
(** Whether at least one satisfying valuation exists (boolean-query
    semantics). *)

val derives : Ast.t -> Instance.t -> Fact.t -> bool
(** Whether the given head fact is derived on the instance. *)

(** The pre-compiled-plan backtracking evaluator over {!Valuation.t}
    maps and {!Index} columns, kept as the reference oracle: the
    randomized equivalence suite asserts [Reference.eval ≡ eval], and
    the e12 benchmark measures the speedup against it. *)
module Reference : sig
  val fold_valuations :
    Ast.t -> Instance.t -> (Valuation.t -> 'a -> 'a) -> 'a -> 'a

  val fold_valuations_idx :
    Ast.t -> Index.t -> (Valuation.t -> 'a -> 'a) -> 'a -> 'a

  val eval : Ast.t -> Instance.t -> Instance.t
  val eval_idx : Ast.t -> Index.t -> Instance.t
end
