(** Evaluation of conjunctive queries (with optional negation and
    inequalities) over instances.

    The evaluator compiles the query to a {!Plan} — variables as
    integer slots, interned-tuple match programs, statically chosen
    index probes — and backtracks over the greedily ordered body with
    integer comparisons only. Negated atoms and inequalities are
    checked once all body variables are bound (safety guarantees they
    are). The pre-compilation evaluator survives as {!Reference}, the
    oracle for equivalence tests and old-vs-new benchmarks. *)

open Lamp_relational

(** Selectable plan backend. [Binary] (the default) is the compiled
    binary-join pipeline of {!Plan}; [Wcoj] is the leapfrog
    worst-case-optimal join of {!Wcoj}, bounded by the AGM bound on
    cyclic queries. Both run over the same interned {!Plan.Db} column
    indexes and agree bit-for-bit on every query and instance (checked
    by the randomized property suite, with {!Generic_join} as the
    value-level oracle). *)
type strategy =
  | Binary
  | Wcoj

val strategy_name : strategy -> string
(** ["binary"] / ["wcoj"], as accepted by the CLI and bench flags. *)

val strategy_of_string : string -> (strategy, string) result

val fold_valuations :
  ?strategy:strategy -> Ast.t -> Instance.t -> (Valuation.t -> 'a -> 'a) -> 'a -> 'a
(** Folds over all satisfying valuations of the query. *)

val fold_valuations_idx :
  ?strategy:strategy -> Ast.t -> Index.t -> (Valuation.t -> 'a -> 'a) -> 'a -> 'a
(** As {!fold_valuations} over a pre-built index, allowing index reuse
    across queries on the same instance. *)

val valuations : ?strategy:strategy -> Ast.t -> Instance.t -> Valuation.t list
(** All satisfying valuations of [q] on the instance. *)

val eval : ?strategy:strategy -> Ast.t -> Instance.t -> Instance.t
(** [eval q i] is [Q(I)]: the set of facts derived by satisfying
    valuations. *)

val eval_idx : ?strategy:strategy -> Ast.t -> Index.t -> Instance.t

val eval_ucq : ?strategy:strategy -> Ast.t list -> Instance.t -> Instance.t
(** Union of the results of the disjuncts. *)

val holds : ?strategy:strategy -> Ast.t -> Instance.t -> bool
(** Whether at least one satisfying valuation exists (boolean-query
    semantics). *)

val derives : ?strategy:strategy -> Ast.t -> Instance.t -> Fact.t -> bool
(** Whether the given head fact is derived on the instance. *)

(** The pre-compiled-plan backtracking evaluator over {!Valuation.t}
    maps and {!Index} columns, kept as the reference oracle: the
    randomized equivalence suite asserts [Reference.eval ≡ eval], and
    the e12 benchmark measures the speedup against it. *)
module Reference : sig
  val fold_valuations :
    Ast.t -> Instance.t -> (Valuation.t -> 'a -> 'a) -> 'a -> 'a

  val fold_valuations_idx :
    Ast.t -> Index.t -> (Valuation.t -> 'a -> 'a) -> 'a -> 'a

  val eval : Ast.t -> Instance.t -> Instance.t
  val eval_idx : Ast.t -> Index.t -> Instance.t
end
