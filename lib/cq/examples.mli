(** The worked queries of the paper, as parsed values.

    Keeping them in one place lets tests, examples and benches refer to
    the paper's running examples by name. *)

val q1_join : Ast.t
(** Example 3.1(1): [H(x,y,z) ← R(x,y), S(y,z)]. *)

val q2_triangle : Ast.t
(** Example 3.1(2) / 3.2: the triangle query over three distinct
    relations [R], [S], [T]. *)

val qe_example_4_1 : Ast.t
(** Example 4.1: [H(x1,x3) ← R(x1,x2), R(x2,x3), S(x3,x1)]. *)

val q_example_4_3 : Ast.t
(** Example 4.3 / 4.5: [H(x,z) ← R(x,y), R(y,z), R(x,x)] — the query
    showing that (PC0) is not necessary for parallel-correctness. *)

val q1_example_4_11 : Ast.t
(** [H() ← S(x), R(x,x), T(x)]. *)

val q2_example_4_11 : Ast.t
(** [H() ← R(x,x), T(x)]. *)

val q3_example_4_11 : Ast.t
(** [H() ← S(x), R(x,y), T(y)]. *)

val q4_example_4_11 : Ast.t
(** [H() ← R(x,y), T(y)]. *)

val triangles_distinct : Ast.t
(** Example 5.1(1): all triangles with pairwise distinct nodes, over a
    single edge relation [E]. *)

val open_triangle : Ast.t
(** Example 5.1(2): open triangles [H(x,y,z) ← E(x,y), E(y,z), ¬E(z,x)]
    — the paper's non-monotone running example. *)

val two_path : Ast.t
(** [H(x,z) ← E(x,y), E(y,z)]. *)

val full_triangle_e : Ast.t
(** Triangle query over a single edge relation, without inequalities. *)

val q_four_cycle : Ast.t
(** The 4-cycle [H(x,y,z,w) ← R(x,y), S(y,z), T(z,w), U(w,x)] — with
    the triangle and the cliques, the canonical cyclic queries on which
    worst-case-optimal joins beat every binary join plan. *)

val q_clique : int -> Ast.t
(** [q_clique k] is the k-clique query
    [H(x1,…,xk) ← Eij(xi,xj) for 1 ≤ i < j ≤ k] over one binary
    relation per edge ({!clique_rels} names them), so it is self-join
    free and every MPC entry point applies directly. Populate all the
    [Eij] with the same edge set to count cliques of one graph.
    @raise Invalid_argument when [k < 2]. *)

val clique_rels : int -> string list
(** The relation names [q_clique k] uses, in atom order. *)
