let q1_join = Parser.query "H(x,y,z) <- R(x,y), S(y,z)"

let q2_triangle = Parser.query "H(x,y,z) <- R(x,y), S(y,z), T(z,x)"

let qe_example_4_1 = Parser.query "H(x1,x3) <- R(x1,x2), R(x2,x3), S(x3,x1)"

let q_example_4_3 = Parser.query "H(x,z) <- R(x,y), R(y,z), R(x,x)"

let q1_example_4_11 = Parser.query "H() <- S(x), R(x,x), T(x)"
let q2_example_4_11 = Parser.query "H() <- R(x,x), T(x)"
let q3_example_4_11 = Parser.query "H() <- S(x), R(x,y), T(y)"
let q4_example_4_11 = Parser.query "H() <- R(x,y), T(y)"

let triangles_distinct =
  Parser.query
    "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, z != x"

let open_triangle = Parser.query "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)"

let two_path = Parser.query "H(x,z) <- E(x,y), E(y,z)"

let full_triangle_e = Parser.query "H(x,y,z) <- E(x,y), E(y,z), E(z,x)"

let q_four_cycle =
  Parser.query "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w), U(w,x)"

(* k-clique over one binary relation per edge: atoms Eij(xi, xj) for
   1 <= i < j <= k. Distinct relation names keep the query self-join
   free, so every MPC entry point (HyperCube shares, KST heavy/light
   decomposition) applies directly; populate each Eij with the same
   edge set to count the cliques of a single graph (see
   [Mpc.Workload.clique_from_pairs]). *)
let q_clique k =
  if k < 2 then invalid_arg "Examples.q_clique: k must be >= 2";
  let var i = Fmt.str "x%d" i in
  let head = Fmt.str "H(%s)" (String.concat "," (List.init k (fun i -> var (i + 1)))) in
  let atoms = ref [] in
  for i = 1 to k do
    for j = i + 1 to k do
      atoms := Fmt.str "E%d%d(%s,%s)" i j (var i) (var j) :: !atoms
    done
  done;
  Parser.query (head ^ " <- " ^ String.concat ", " (List.rev !atoms))

let clique_rels k =
  let rels = ref [] in
  for i = 1 to k do
    for j = i + 1 to k do
      rels := Fmt.str "E%d%d" i j :: !rels
    done
  done;
  List.rev !rels
