open Lamp_relational

(* The default evaluator compiles the query to a Plan and runs it over
   the instance's interned view (Index.db): integer comparisons in the
   inner loop, Valuation.t only materialized at the leaves. The
   pre-compilation backtracking evaluator is kept, bit-for-bit, as
   [Reference] — it is the oracle the randomized equivalence suite and
   the e12 old-vs-new benchmark run against. *)

(* ------------------------------------------------------------------ *)
(* Reference engine (pre-compiled-plan)                                *)

module Reference = struct
  (* Greedy join order: start from the smallest relation, then
     repeatedly pick an atom sharing a variable with the already-bound
     set (preferring small relations), falling back to the smallest
     unconnected atom for cartesian products. The chosen atom is
     removed by position: removing with [List.filter (!=)] dropped all
     physically shared duplicates of the chosen atom at once, silently
     skipping their join steps. *)
  let order_atoms idx atoms =
    let module Sset = Set.Make (String) in
    let size a = Index.count idx ~rel:a.Ast.rel in
    let remove_nth n l = List.filteri (fun i _ -> i <> n) l in
    let rec pick bound remaining acc =
      match remaining with
      | [] -> List.rev acc
      | _ ->
        let indexed = List.mapi (fun i a -> (i, a)) remaining in
        let connected, rest =
          List.partition
            (fun (_, a) ->
              List.exists (fun v -> Sset.mem v bound) (Ast.atom_vars a)
              || Ast.atom_vars a = [])
            indexed
        in
        let pool = if connected <> [] then connected else rest in
        let best =
          List.fold_left
            (fun best (i, a) ->
              match best with
              | None -> Some (i, a)
              | Some (_, b) -> if size a < size b then Some (i, a) else best)
            None pool
        in
        (match best with
        | None -> List.rev acc
        | Some (i, a) ->
          let bound =
            List.fold_left (fun s v -> Sset.add v s) bound (Ast.atom_vars a)
          in
          pick bound (remove_nth i remaining) (a :: acc))
    in
    pick Sset.empty atoms []

  (* Unify a tuple with an atom under a partial valuation. *)
  let match_tuple valuation (a : Ast.atom) tuple =
    if Tuple.arity tuple <> List.length a.Ast.terms then None
    else
      let rec go i terms valuation =
        match terms with
        | [] -> Some valuation
        | Ast.Const c :: rest ->
          if Value.equal c tuple.(i) then go (i + 1) rest valuation else None
        | Ast.Var v :: rest -> (
          match Valuation.find v valuation with
          | Some value ->
            if Value.equal value tuple.(i) then go (i + 1) rest valuation
            else None
          | None -> go (i + 1) rest (Valuation.bind v tuple.(i) valuation))
      in
      go 0 a.Ast.terms valuation

  (* Candidate tuples for an atom: probe the index on the first bound
     position, scan the relation when nothing is bound. *)
  let candidates idx valuation (a : Ast.atom) =
    let rec bound_pos i = function
      | [] -> None
      | Ast.Const c :: _ -> Some (i, c)
      | Ast.Var v :: rest -> (
        match Valuation.find v valuation with
        | Some value -> Some (i, value)
        | None -> bound_pos (i + 1) rest)
    in
    match bound_pos 0 a.Ast.terms with
    | Some (pos, value) -> Index.lookup idx ~rel:a.Ast.rel ~pos ~value
    | None -> Index.all idx ~rel:a.Ast.rel

  let fold_valuations_idx q idx f init =
    let ordered = order_atoms idx (Ast.body q) in
    let instance = Index.instance idx in
    let rec go valuation atoms acc =
      match atoms with
      | [] ->
        if
          Valuation.satisfies_diseq valuation q
          && Valuation.satisfies_negation valuation q instance
        then f valuation acc
        else acc
      | a :: rest ->
        List.fold_left
          (fun acc tuple ->
            match match_tuple valuation a tuple with
            | Some valuation -> go valuation rest acc
            | None -> acc)
          acc (candidates idx valuation a)
    in
    go Valuation.empty ordered init

  let fold_valuations q instance f init =
    fold_valuations_idx q (Index.create instance) f init

  let eval_idx q idx =
    fold_valuations_idx q idx
      (fun v acc -> Instance.add (Valuation.head_fact v q) acc)
      Instance.empty

  let eval q instance = eval_idx q (Index.create instance)
end

(* ------------------------------------------------------------------ *)
(* Compiled-plan engine (default)                                      *)

(* Selectable plan backend: [Binary] is the seed backtracking pipeline
   over compiled {!Plan}s; [Wcoj] is the leapfrog worst-case-optimal
   join of {!Wcoj}, which avoids the intermediate-result blowup on
   cyclic queries. Both run on the same interned [Plan.Db] indexes and
   produce identical instances — the property suite checks them against
   each other and against {!Generic_join}. *)
type strategy =
  | Binary
  | Wcoj

let strategy_name = function
  | Binary -> "binary"
  | Wcoj -> "wcoj"

let strategy_of_string = function
  | "binary" -> Ok Binary
  | "wcoj" -> Ok Wcoj
  | s -> Error (Fmt.str "unknown plan strategy %S (binary|wcoj)" s)

let compile q idx = Plan.make ~counts:(Plan.Db.count (Index.db idx)) q

let compile_wcoj q idx = Wcoj.make ~counts:(Plan.Db.count (Index.db idx)) q

let fold_valuations_idx ?(strategy = Binary) q idx f init =
  let db = Index.db idx in
  match strategy with
  | Binary ->
    let plan = compile q idx in
    Plan.fold plan db (fun regs acc -> f (Plan.valuation plan regs) acc) init
  | Wcoj ->
    let plan = compile_wcoj q idx in
    Wcoj.fold plan db (fun regs acc -> f (Wcoj.valuation plan regs) acc) init

let fold_valuations ?strategy q instance f init =
  fold_valuations_idx ?strategy q (Index.create instance) f init

let valuations ?strategy q instance =
  List.rev (fold_valuations ?strategy q instance (fun v acc -> v :: acc) [])

let eval_idx ?(strategy = Binary) q idx =
  let db = Index.db idx in
  let head_rel, tuples =
    match strategy with
    | Binary ->
      let plan = compile q idx in
      ( Plan.head_rel plan,
        Plan.fold plan db (fun regs acc -> Plan.head_tuple plan regs :: acc) []
      )
    | Wcoj ->
      let plan = compile_wcoj q idx in
      ( Wcoj.head_rel plan,
        Wcoj.fold plan db (fun regs acc -> Wcoj.head_tuple plan regs :: acc) []
      )
  in
  match tuples with
  | [] -> Instance.empty
  | _ ->
    Instance.of_tuple_set head_rel
      (Tuple.Set.of_list (List.rev_map Intern.untuple tuples))

let eval ?strategy q instance = eval_idx ?strategy q (Index.create instance)

let eval_ucq ?strategy qs instance =
  let idx = Index.create instance in
  List.fold_left
    (fun acc q -> Instance.union acc (eval_idx ?strategy q idx))
    Instance.empty qs

let holds ?strategy q instance =
  let exception Found in
  try
    fold_valuations ?strategy q instance (fun _ () -> raise Found) ();
    false
  with Found -> true

let derives ?strategy q instance fact =
  let exception Found in
  try
    fold_valuations ?strategy q instance
      (fun v () ->
        if Fact.equal (Valuation.head_fact v q) fact then raise Found)
      ();
    false
  with Found -> true
