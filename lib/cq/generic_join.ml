open Lamp_relational
module Sset = Set.Make (String)

(* Worst-case optimal ("generic") join in the style of NPRR /
   Leapfrog-Triejoin: variables are eliminated one at a time, and the
   candidate values for each variable are obtained by intersecting the
   value sets offered by every atom containing it — iterating the
   smallest set and probing the others, which is what bounds the work by
   the AGM output bound m^ρ* instead of the intermediate-result sizes of
   binary join plans. Chu–Balazinska–Suciu pair exactly this local
   algorithm with the HyperCube reshuffle. *)

let check_query q =
  if Ast.has_negation q then
    invalid_arg "Generic_join.eval: negated atoms are not supported \
                 (inequalities are)"

(* Default variable order: most constrained first — variables covered
   by more body atoms are eliminated earlier. Fully deterministic, a
   pure function of the query: covering counts are computed once into
   an association list keyed by the (sorted) output of [Ast.body_vars],
   and ties are broken by variable name, ascending. Nothing here reads
   a hash table or other iteration-order-dependent structure, so the
   order — and therefore the exact sequence of intersections — is
   stable across runs and OCaml versions. [Wcoj] relies on this module
   as its value-level oracle; a nondeterministic order would make
   failures of the equivalence properties unreproducible. *)
let default_order q =
  let counts =
    List.map
      (fun v ->
        ( v,
          List.length
            (List.filter (fun a -> List.mem v (Ast.atom_vars a)) (Ast.body q))
        ))
      (Ast.body_vars q)
  in
  let count v = List.assoc v counts in
  List.sort
    (fun v1 v2 ->
      let c = Int.compare (count v2) (count v1) in
      if c <> 0 then c else String.compare v1 v2)
    (Ast.body_vars q)

(* Candidate tuples of an atom compatible with the current valuation:
   probe the index on the first bound position when one exists. *)
let candidates idx valuation (a : Ast.atom) =
  let rec bound_pos i = function
    | [] -> None
    | Ast.Const c :: _ -> Some (i, c)
    | Ast.Var v :: rest -> (
      match Valuation.find v valuation with
      | Some value -> Some (i, value)
      | None -> bound_pos (i + 1) rest)
  in
  let pool =
    match bound_pos 0 a.Ast.terms with
    | Some (pos, value) -> Index.lookup idx ~rel:a.Ast.rel ~pos ~value
    | None -> Index.all idx ~rel:a.Ast.rel
  in
  List.filter
    (fun tup ->
      Tuple.arity tup = List.length a.Ast.terms
      &&
      let ok = ref true in
      List.iteri
        (fun i term ->
          match term with
          | Ast.Const c -> if not (Value.equal c tup.(i)) then ok := false
          | Ast.Var v -> (
            match Valuation.find v valuation with
            | Some value -> if not (Value.equal value tup.(i)) then ok := false
            | None -> ()))
        a.Ast.terms;
      !ok)
    pool

(* Values atom [a] offers for variable [v] under the valuation: the
   values at v's positions in the compatible tuples (consistent across
   repeated occurrences). *)
let offered idx valuation (a : Ast.atom) v =
  let positions =
    List.mapi (fun i t -> (i, t)) a.Ast.terms
    |> List.filter_map (fun (i, t) ->
           match t with Ast.Var u when u = v -> Some i | _ -> None)
  in
  List.fold_left
    (fun acc tup ->
      match positions with
      | [] -> acc
      | p0 :: rest ->
        let candidate = tup.(p0) in
        if List.for_all (fun p -> Value.equal tup.(p) candidate) rest then
          Value.Set.add candidate acc
        else acc)
    Value.Set.empty
    (candidates idx valuation a)

let fold ?order q idx f init =
  check_query q;
  let order = match order with Some o -> o | None -> default_order q in
  (if
     List.sort String.compare order
     <> List.sort String.compare (Ast.body_vars q)
   then invalid_arg "Generic_join: order must enumerate the body variables");
  let atoms_with v =
    List.filter (fun a -> List.mem v (Ast.atom_vars a)) (Ast.body q)
  in
  let rec go valuation vars acc =
    match vars with
    | [] ->
      (* All variables bound; verify atoms with no variables (ground)
         and the inequalities. *)
      let grounded =
        List.for_all
          (fun a -> candidates idx valuation a <> [])
          (List.filter (fun a -> Ast.atom_vars a = []) (Ast.body q))
      in
      if grounded && Valuation.satisfies_diseq valuation q then f valuation acc
      else acc
    | v :: rest ->
      (* Intersect the value sets of every atom containing v, smallest
         first. *)
      (match atoms_with v with
      | [] -> acc (* impossible: body variables occur in some atom *)
      | atoms ->
        let sets = List.map (fun a -> offered idx valuation a v) atoms in
        let sorted =
          List.sort (fun s1 s2 -> Int.compare (Value.Set.cardinal s1) (Value.Set.cardinal s2)) sets
        in
        match sorted with
        | [] -> acc
        | smallest :: others ->
          Value.Set.fold
            (fun value acc ->
              if List.for_all (Value.Set.mem value) others then
                go (Valuation.bind v value valuation) rest acc
              else acc)
            smallest acc)
  in
  go Valuation.empty order init

let eval ?order q instance =
  let idx = Index.create instance in
  fold ?order q idx
    (fun valuation acc -> Instance.add (Valuation.head_fact valuation q) acc)
    Instance.empty
