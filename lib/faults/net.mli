(** Seeded, deterministic wire-level fault plans and an in-process
    chaos proxy.

    Where {!Plan} injects faults into the simulated MPC rounds, [Net]
    injects them into real sockets: connection refusal and accept
    delay, hard reset or truncation at a drawn byte offset, a
    mid-stream stall, slow-loris trickle delivery of the first
    [window] bytes, and a single byte flip. Every decision is a pure
    function of [(seed, connection ordinal, direction)] — same seed,
    same hostile network, on any machine.

    The {!Proxy} interposes a plan between a [Serve.Client] and a
    [Serve.Server] without touching either: point the client at the
    proxy's address and the proxy relays each accepted connection to
    the upstream server through the plan's faults. *)

type spec = {
  refuse : float;  (** Accept-time probability the connection is
                       accepted and immediately closed. *)
  accept_delay : float;  (** Accept-time probability the relay is
                             delayed before contacting upstream. *)
  accept_delay_s : float;  (** Upper bound on that delay (seconds). *)
  reset : float;  (** Per-direction probability of a hard reset at a
                      drawn byte offset: both directions are torn
                      down at once. *)
  truncate : float;  (** Per-direction probability the stream is
                         half-closed at a drawn byte offset; the
                         other direction keeps flowing. *)
  stall : float;  (** Per-direction probability of a one-off pause
                      (partial write, then silence) at a drawn
                      offset. *)
  stall_s : float;  (** Upper bound on the stall (seconds). *)
  trickle : float;  (** Per-direction probability the first [window]
                        bytes are delivered a few bytes at a time
                        with a per-chunk delay (slow loris). *)
  flip : float;  (** Per-direction probability exactly one byte
                     within [window] is XORed with a non-zero
                     mask. *)
  window : int;  (** Byte-offset horizon for cut/stall/flip/trickle
                     draws (default 2048): faults land in the first
                     [window] bytes of the stream. *)
}

val zero : spec
(** All probabilities 0 — a transparent proxy. *)

val chaos : spec
(** Kitchen-sink preset: refusals, delays, resets, truncations,
    stalls, trickles and flips all enabled at moderate rates. *)

type t

val none : t
val is_none : t -> bool

val make : ?seed:int -> spec -> t
(** @raise Invalid_argument when a probability is outside [0, 1],
    [reset + truncate > 1], a duration is negative, or
    [window < 1]. *)

val seed : t -> int
val spec : t -> spec

val of_string : ?seed:int -> string -> t
(** Parses a CLI net-fault spec: comma-separated [key=value] fields
    among [refuse], [delay], [reset], [truncate], [stall], [trickle],
    [flip] (probabilities), [delay_s], [stall_s] (seconds) and
    [window=BYTES]; ["none"]/[""] is {!none}, ["chaos"] the {!chaos}
    preset. A trailing ["@seed=N"] (the {!pp} echo) names the seed and
    takes precedence over [?seed], so a logged plan re-parses to the
    identical plan.
    @raise Invalid_argument on malformed input. *)

val pp : t Fmt.t
(** Canonical [spec@seed=N] form, accepted verbatim by {!of_string}. *)

(** {1 Deterministic decisions}

    Exposed so tests can assert a plan's behaviour without sockets. *)

type cut =
  | Reset  (** Tear down both directions at the offset. *)
  | Truncate  (** Half-close this direction at the offset. *)

type stream_faults = {
  cut : (int * cut) option;  (** Offset and kind of the severing. *)
  stall_at : (int * float) option;  (** Offset and duration. *)
  flip_at : (int * int) option;  (** Offset and XOR mask (1–255). *)
  trickle_by : (int * float) option;
      (** Chunk size (bytes) and per-chunk delay applied to the first
          [window] bytes. *)
}

type conn_faults = {
  refused : bool;
  delay_s : float;  (** Accept delay; 0 when not selected. *)
  c2s : stream_faults;  (** Client-to-server direction. *)
  s2c : stream_faults;  (** Server-to-client direction. *)
}

val connection : t -> conn:int -> conn_faults
(** The complete fault assignment for the [conn]-th accepted
    connection (0-based) — pure, identical for every call. *)

(** {1 The chaos proxy} *)

module Proxy : sig
  type proxy

  val start :
    ?backlog:int ->
    plan:t ->
    listen:Unix.sockaddr ->
    upstream:Unix.sockaddr ->
    unit ->
    proxy
  (** Binds [listen] (a stale Unix-socket path is unlinked; TCP gets
      [SO_REUSEADDR]) and relays every accepted connection to
      [upstream] through [plan]'s faults. One acceptor thread plus two
      pump threads per live connection. *)

  val addr : proxy -> Unix.sockaddr
  (** The bound listening address (useful after binding TCP port 0). *)

  val connections : proxy -> int
  (** Connections accepted so far. *)

  val injected : proxy -> (string * int) list
  (** Sorted per-kind counts of faults actually applied (["refuse"],
      ["delay"], ["reset"], ["truncate"], ["stall"], ["trickle"],
      ["flip"]) — a planned fault whose byte offset the stream never
      reached is not counted. *)

  val stop : proxy -> unit
  (** Stops accepting, severs live relays and joins every thread.
      Idempotent. *)
end
