(* Seeded, deterministic filesystem fault plans for the checkpoint
   store. Follows the Faults.Plan philosophy: every decision is a pure
   function of (seed, job, round, operation), never of wall-clock time
   or call order, so a hostile-disk run is reproducible from its seed
   alone. The plan performs no I/O itself — Jobs.Io reads the
   decisions and applies them to real files. *)

type crash_point =
  | Torn_write of float
  | Before_rename
  | After_rename

type spec = {
  crash : (int * crash_point) option;
  rot : float;
  truncate : float;
  enospc : float;
  litter : float;
}

let zero =
  { crash = None; rot = 0.0; truncate = 0.0; enospc = 0.0; litter = 0.0 }

let chaos =
  { zero with rot = 0.25; truncate = 0.15; enospc = 0.25; litter = 0.5 }

type t =
  | Off
  | On of {
      seed : int;
      spec : spec;
    }

let none = Off
let is_none = function Off -> true | On _ -> false

let make ?(seed = 0) spec =
  let prob name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg (Fmt.str "Faults.Disk.make: %s = %g not in [0, 1]" name v)
  in
  prob "rot" spec.rot;
  prob "truncate" spec.truncate;
  prob "enospc" spec.enospc;
  prob "litter" spec.litter;
  (match spec.crash with
  | Some (round, _) when round < 0 ->
    invalid_arg (Fmt.str "Faults.Disk.make: crash round %d < 0" round)
  | Some (_, Torn_write f) when f < 0.0 || f > 1.0 ->
    invalid_arg (Fmt.str "Faults.Disk.make: torn fraction %g not in [0, 1]" f)
  | _ -> ());
  On { seed; spec }

let seed = function Off -> 0 | On p -> p.seed
let spec = function Off -> zero | On p -> p.spec

(* ------------------------------------------------------------------ *)
(* Decisions. Labels live in the 200+ range so they never collide with
   Faults.Plan's (1-7) or Faults.Net's (100+) under a shared seed.
   Coordinates are (job_code job, round, 0). *)

let rot_label = 200
and rot_off_label = 201
and rot_mask_label = 202
and truncate_label = 203
and truncate_off_label = 204
and enospc_label = 205
and enospc2_label = 206
and litter_label = 207

(* A stable, platform-independent integer coordinate for a job name.
   Hashtbl.hash is not specified across OCaml versions, so fold the
   bytes through a fixed polynomial instead; keep the result positive
   so draw coordinates are well-behaved. *)
let job_code name =
  let h = ref 0x9e3779b9 in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land max_int) name;
  !h

type save_faults = {
  crash : crash_point option;
  rot_at : (float * int) option;
  truncate_at : float option;
  enospc_failures : int;
  litter : bool;
}

let no_save_faults =
  {
    crash = None;
    rot_at = None;
    truncate_at = None;
    enospc_failures = 0;
    litter = false;
  }

let save t ~job ~round =
  match t with
  | Off -> no_save_faults
  | On { seed; spec } ->
    let draw label = Plan.draw ~seed ~label (job_code job) round 0 in
    let crash =
      match spec.crash with
      | Some (r, point) when r = round -> Some point
      | _ -> None
    in
    let rot_at =
      if spec.rot > 0.0 && draw rot_label < spec.rot then
        Some
          (draw rot_off_label, 1 + int_of_float (draw rot_mask_label *. 254.999))
      else None
    in
    let truncate_at =
      if spec.truncate > 0.0 && draw truncate_label < spec.truncate then
        Some (draw truncate_off_label)
      else None
    in
    let enospc_failures =
      (* Mirrors Plan.transient_failures: 0, 1 or 2 leading failures,
         always below Plan.max_attempts - 1, so a retried save always
         eventually lands. *)
      if spec.enospc <= 0.0 then 0
      else if draw enospc_label >= spec.enospc then 0
      else if draw enospc2_label < spec.enospc then 2
      else 1
    in
    let litter = spec.litter > 0.0 && draw litter_label < spec.litter in
    { crash; rot_at; truncate_at; enospc_failures; litter }

(* ------------------------------------------------------------------ *)

let pp_point ppf = function
  | Torn_write f -> Fmt.pf ppf "torn:%g" f
  | Before_rename -> Fmt.string ppf "pre-rename"
  | After_rename -> Fmt.string ppf "post-rename"

let point_of_string s =
  match String.trim s with
  | "pre-rename" -> Some Before_rename
  | "post-rename" -> Some After_rename
  | s -> (
    match String.split_on_char ':' s with
    | [ "torn"; f ] -> (
      match float_of_string_opt (String.trim f) with
      | Some f -> Some (Torn_write f)
      | None -> None)
    | _ -> None)

let of_string ?(seed = 0) s =
  (* Accept the [pp] echo: a trailing ["@seed=N"] names the seed the
     plan was printed with, and wins over the [?seed] default so a
     logged plan re-parses to the identical plan. *)
  let s, seed =
    match String.index_opt s '@' with
    | Some i ->
      let tail = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      (match String.split_on_char '=' tail with
      | [ "seed"; n ] -> (
        match int_of_string_opt (String.trim n) with
        | Some n -> (String.sub s 0 i, n)
        | None ->
          invalid_arg
            (Fmt.str "Faults.Disk.of_string: bad seed suffix %S" tail))
      | _ ->
        invalid_arg (Fmt.str "Faults.Disk.of_string: bad seed suffix %S" tail))
    | None -> (s, seed)
  in
  match String.trim s with
  | "" | "none" -> none
  | "chaos" -> make ~seed chaos
  | s ->
    let parse_field spec field =
      let fail () =
        invalid_arg
          (Fmt.str
             "Faults.Disk.of_string: bad field %S (expected key=float among \
              rot/truncate/enospc/litter, or crash=ROUND:POINT with POINT \
              among torn:FRAC, pre-rename, post-rename)"
             field)
      in
      match String.trim field with
      | "" -> spec
      | field -> (
        match String.index_opt field '=' with
        | None -> fail ()
        | Some i ->
          let key = String.trim (String.sub field 0 i) in
          let v =
            String.trim (String.sub field (i + 1) (String.length field - i - 1))
          in
          let f () =
            match float_of_string_opt v with Some f -> f | None -> fail ()
          in
          (match key with
          | "rot" -> { spec with rot = f () }
          | "truncate" -> { spec with truncate = f () }
          | "enospc" -> { spec with enospc = f () }
          | "litter" -> { spec with litter = f () }
          | "crash" -> (
            match String.index_opt v ':' with
            | None -> fail ()
            | Some j -> (
              let round = String.trim (String.sub v 0 j) in
              let point = String.sub v (j + 1) (String.length v - j - 1) in
              match (int_of_string_opt round, point_of_string point) with
              | Some round, Some point ->
                { spec with crash = Some (round, point) }
              | _ -> fail ()))
          | _ -> fail ()))
    in
    let spec = List.fold_left parse_field zero (String.split_on_char ',' s) in
    make ~seed spec

let pp ppf = function
  | Off -> Fmt.string ppf "none"
  | On { seed; spec } ->
    let fields =
      (match spec.crash with
      | Some (round, point) ->
        [ Fmt.str "crash=%d:%a" round pp_point point ]
      | None -> [])
      @ List.filter_map
          (fun (k, v) -> if v > 0.0 then Some (Fmt.str "%s=%g" k v) else None)
          [
            ("rot", spec.rot);
            ("truncate", spec.truncate);
            ("enospc", spec.enospc);
            ("litter", spec.litter);
          ]
    in
    let body = match fields with [] -> "none" | _ -> String.concat "," fields in
    Fmt.pf ppf "%s@@seed=%d" body seed
