(* Seeded, deterministic wire-level fault plans and the in-process
   chaos proxy that applies them between a Serve.Client and a
   Serve.Server. Follows the Faults.Plan philosophy: every decision is
   a pure function of (seed, connection ordinal, direction), never of
   wall-clock time or scheduling, so a hostile-network run is
   reproducible from its seed alone. *)

type spec = {
  refuse : float;
  accept_delay : float;
  accept_delay_s : float;
  reset : float;
  truncate : float;
  stall : float;
  stall_s : float;
  trickle : float;
  flip : float;
  window : int;
}

let zero =
  {
    refuse = 0.0;
    accept_delay = 0.0;
    accept_delay_s = 0.02;
    reset = 0.0;
    truncate = 0.0;
    stall = 0.0;
    stall_s = 0.05;
    trickle = 0.0;
    flip = 0.0;
    window = 2048;
  }

let chaos =
  {
    zero with
    refuse = 0.05;
    accept_delay = 0.2;
    reset = 0.12;
    truncate = 0.08;
    stall = 0.15;
    trickle = 0.15;
    flip = 0.1;
  }

type t =
  | Off
  | On of {
      seed : int;
      spec : spec;
    }

let none = Off
let is_none = function Off -> true | On _ -> false

let make ?(seed = 0) spec =
  let prob name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg (Fmt.str "Faults.Net.make: %s = %g not in [0, 1]" name v)
  in
  prob "refuse" spec.refuse;
  prob "accept_delay" spec.accept_delay;
  prob "reset" spec.reset;
  prob "truncate" spec.truncate;
  prob "stall" spec.stall;
  prob "trickle" spec.trickle;
  prob "flip" spec.flip;
  if spec.reset +. spec.truncate > 1.0 then
    invalid_arg "Faults.Net.make: reset + truncate > 1";
  if spec.accept_delay_s < 0.0 || spec.stall_s < 0.0 then
    invalid_arg "Faults.Net.make: negative duration";
  if spec.window < 1 then
    invalid_arg (Fmt.str "Faults.Net.make: window = %d < 1" spec.window);
  On { seed; spec }

let seed = function Off -> 0 | On p -> p.seed
let spec = function Off -> zero | On p -> p.spec

(* ------------------------------------------------------------------ *)
(* Decisions. Labels live in the 100+ range so they never collide with
   Faults.Plan's (1-7) under a shared seed. Coordinates are
   (conn, dir, 0) where dir is 0 for client->server, 1 for
   server->client; accept-time decisions use dir = 0. *)

let refuse_label = 100
and accept_delay_label = 101
and accept_delay_len_label = 102
and cut_label = 103
and cut_off_label = 104
and stall_label = 105
and stall_off_label = 106
and stall_len_label = 107
and flip_label = 108
and flip_off_label = 109
and flip_mask_label = 110
and trickle_label = 111
and trickle_chunk_label = 112
and trickle_delay_label = 113

type cut =
  | Reset
  | Truncate

type stream_faults = {
  cut : (int * cut) option;
  stall_at : (int * float) option;
  flip_at : (int * int) option;
  trickle_by : (int * float) option;
}

type conn_faults = {
  refused : bool;
  delay_s : float;
  c2s : stream_faults;
  s2c : stream_faults;
}

let no_stream_faults =
  { cut = None; stall_at = None; flip_at = None; trickle_by = None }

let stream ~seed ~spec ~conn ~dir =
  let draw label = Plan.draw ~seed ~label conn dir 0 in
  let offset label = int_of_float (draw label *. float_of_int spec.window) in
  let cut =
    let u = draw cut_label in
    if u < spec.reset then Some (offset cut_off_label, Reset)
    else if u < spec.reset +. spec.truncate then
      Some (offset cut_off_label, Truncate)
    else None
  in
  let stall_at =
    if spec.stall > 0.0 && draw stall_label < spec.stall then
      Some
        ( offset stall_off_label,
          spec.stall_s *. (0.2 +. (0.8 *. draw stall_len_label)) )
    else None
  in
  let flip_at =
    if spec.flip > 0.0 && draw flip_label < spec.flip then
      Some
        ( offset flip_off_label,
          1 + int_of_float (draw flip_mask_label *. 254.999) )
    else None
  in
  let trickle_by =
    if spec.trickle > 0.0 && draw trickle_label < spec.trickle then
      Some
        ( 1 + int_of_float (draw trickle_chunk_label *. 7.0),
          0.0002 +. (0.0008 *. draw trickle_delay_label) )
    else None
  in
  { cut; stall_at; flip_at; trickle_by }

let no_conn_faults =
  { refused = false; delay_s = 0.0; c2s = no_stream_faults;
    s2c = no_stream_faults }

let connection t ~conn =
  match t with
  | Off -> no_conn_faults
  | On { seed; spec } ->
    let draw label = Plan.draw ~seed ~label conn 0 0 in
    let refused = spec.refuse > 0.0 && draw refuse_label < spec.refuse in
    let delay_s =
      if spec.accept_delay > 0.0 && draw accept_delay_label < spec.accept_delay
      then spec.accept_delay_s *. (0.1 +. (0.9 *. draw accept_delay_len_label))
      else 0.0
    in
    {
      refused;
      delay_s;
      c2s = stream ~seed ~spec ~conn ~dir:0;
      s2c = stream ~seed ~spec ~conn ~dir:1;
    }

(* ------------------------------------------------------------------ *)

let of_string ?(seed = 0) s =
  (* Accept the [pp] echo: a trailing ["@seed=N"] names the seed the
     plan was printed with, and wins over the [?seed] default so a
     logged plan re-parses to the identical plan. *)
  let s, seed =
    match String.index_opt s '@' with
    | Some i ->
      let tail = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      (match String.split_on_char '=' tail with
      | [ "seed"; n ] -> (
        match int_of_string_opt (String.trim n) with
        | Some n -> (String.sub s 0 i, n)
        | None ->
          invalid_arg
            (Fmt.str "Faults.Net.of_string: bad seed suffix %S" tail))
      | _ ->
        invalid_arg (Fmt.str "Faults.Net.of_string: bad seed suffix %S" tail))
    | None -> (s, seed)
  in
  match String.trim s with
  | "" | "none" -> none
  | "chaos" -> make ~seed chaos
  | s ->
    let parse_field spec field =
      let fail () =
        invalid_arg
          (Fmt.str
             "Faults.Net.of_string: bad field %S (expected key=float among \
              refuse/delay/reset/truncate/stall/trickle/flip, key=seconds \
              among delay_s/stall_s, or window=BYTES)"
             field)
      in
      match String.trim field with
      | "" -> spec
      | field -> (
        match String.index_opt field '=' with
        | None -> fail ()
        | Some i ->
          let key = String.trim (String.sub field 0 i) in
          let v =
            String.trim (String.sub field (i + 1) (String.length field - i - 1))
          in
          let f () =
            match float_of_string_opt v with Some f -> f | None -> fail ()
          in
          let n () =
            match int_of_string_opt v with Some n -> n | None -> fail ()
          in
          (match key with
          | "refuse" -> { spec with refuse = f () }
          | "delay" -> { spec with accept_delay = f () }
          | "delay_s" -> { spec with accept_delay_s = f () }
          | "reset" -> { spec with reset = f () }
          | "truncate" -> { spec with truncate = f () }
          | "stall" -> { spec with stall = f () }
          | "stall_s" -> { spec with stall_s = f () }
          | "trickle" -> { spec with trickle = f () }
          | "flip" -> { spec with flip = f () }
          | "window" -> { spec with window = n () }
          | _ -> fail ()))
    in
    let spec = List.fold_left parse_field zero (String.split_on_char ',' s) in
    make ~seed spec

let pp ppf = function
  | Off -> Fmt.string ppf "none"
  | On { seed; spec } ->
    let fields =
      List.filter_map
        (fun (k, v) -> if v > 0.0 then Some (Fmt.str "%s=%g" k v) else None)
        [
          ("refuse", spec.refuse);
          ("delay", spec.accept_delay);
          ("reset", spec.reset);
          ("truncate", spec.truncate);
          ("stall", spec.stall);
          ("trickle", spec.trickle);
          ("flip", spec.flip);
        ]
      @ (if spec.accept_delay > 0.0 && spec.accept_delay_s <> zero.accept_delay_s
         then [ Fmt.str "delay_s=%g" spec.accept_delay_s ]
         else [])
      @ (if spec.stall > 0.0 && spec.stall_s <> zero.stall_s then
           [ Fmt.str "stall_s=%g" spec.stall_s ]
         else [])
      @
      if spec.window <> zero.window then [ Fmt.str "window=%d" spec.window ]
      else []
    in
    let body = match fields with [] -> "none" | _ -> String.concat "," fields in
    Fmt.pf ppf "%s@@seed=%d" body seed

(* ------------------------------------------------------------------ *)
(* The chaos proxy: a real listening socket that relays every accepted
   connection to an upstream server through the plan's stream faults.
   One acceptor thread plus two pump threads per live connection, the
   same select-poll shutdown idiom as Serve.Server. *)

module Proxy = struct
  type proxy = {
    plan : t;
    upstream : Unix.sockaddr;
    listen_fd : Unix.file_descr;
    listen_addr : Unix.sockaddr;
    lock : Mutex.t;
    mutable stopped : bool;
    mutable conns : int;
    counts : (string, int) Hashtbl.t;
    live : (Unix.file_descr, unit) Hashtbl.t;
    mutable acceptor : Thread.t option;
    mutable relays : Thread.t list;
  }

  let count t kind =
    Mutex.protect t.lock (fun () ->
        Hashtbl.replace t.counts kind
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts kind)))

  let track t fd = Mutex.protect t.lock (fun () -> Hashtbl.replace t.live fd ())

  let untrack t fd =
    Mutex.protect t.lock (fun () -> Hashtbl.remove t.live fd)

  (* Writes after the peer shuts its read side raise SIGPIPE, whose
     default disposition terminates the process before EPIPE can reach
     the relay's cleanup — a hazard of the proxy's trade, since its
     whole purpose is severing streams mid-flight. *)
  let sigpipe_ignored =
    lazy
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ())

  let rec write_all fd b i len =
    Lazy.force sigpipe_ignored;
    if len > 0 then begin
      match Unix.write fd b i len with
      | n -> write_all fd b (i + n) (len - n)
      | exception Unix.Unix_error (EINTR, _, _) -> write_all fd b i len
    end

  exception Cut_stream of cut

  (* Forward one direction of the connection, applying the stream's
     faults at their drawn byte offsets. [other] is the opposite fd, so
     a Reset can tear down the whole conversation. *)
  let pump t fl ~src ~dst =
    let window = (spec t.plan).window in
    let buf = Bytes.create 8192 in
    let pos = ref 0 in
    let stalled = ref false in
    let flipped = ref false in
    let trickled = ref false in
    (* Send buf[i, n) occupying stream offsets [!pos, !pos + n - i);
       raises Cut_stream when the plan severs the stream. *)
    let rec forward i n =
      if i < n then begin
        (match fl.flip_at with
        | Some (o, mask) when (not !flipped) && o >= !pos && o < !pos + n - i ->
          let j = i + o - !pos in
          Bytes.set buf j
            (Char.chr (Char.code (Bytes.get buf j) lxor mask land 0xff));
          flipped := true;
          count t "flip"
        | _ -> ());
        (match fl.cut with
        | Some (o, kind) when !pos >= o ->
          count t (match kind with Reset -> "reset" | Truncate -> "truncate");
          raise (Cut_stream kind)
        | _ -> ());
        (match fl.stall_at with
        | Some (o, d) when (not !stalled) && !pos >= o ->
          stalled := true;
          count t "stall";
          Unix.sleepf d
        | _ -> ());
        let limit = ref n in
        (match fl.cut with
        | Some (o, _) when o - !pos + i < !limit -> limit := o - !pos + i
        | _ -> ());
        (match fl.stall_at with
        | Some (o, _) when (not !stalled) && o > !pos && o - !pos + i < !limit
          -> limit := o - !pos + i
        | _ -> ());
        let sleep_after = ref 0.0 in
        (match fl.trickle_by with
        | Some (chunk, d) when !pos < window ->
          if not !trickled then begin
            trickled := true;
            count t "trickle"
          end;
          if i + chunk < !limit then limit := i + chunk;
          sleep_after := d
        | _ -> ());
        write_all dst buf i (!limit - i);
        pos := !pos + (!limit - i);
        if !sleep_after > 0.0 then Unix.sleepf !sleep_after;
        forward !limit n
      end
    in
    let rec copy () =
      match Unix.read src buf 0 (Bytes.length buf) with
      | 0 ->
        (* EOF: propagate the half-close downstream. *)
        (try Unix.shutdown dst Unix.SHUTDOWN_SEND with _ -> ())
      | n ->
        forward 0 n;
        copy ()
      | exception Unix.Unix_error (EINTR, _, _) -> copy ()
      | exception Unix.Unix_error (_, _, _) ->
        (try Unix.shutdown dst Unix.SHUTDOWN_SEND with _ -> ())
    in
    try copy () with
    | Cut_stream Reset ->
      (* Hard reset: tear down both directions at once. *)
      (try Unix.shutdown src Unix.SHUTDOWN_ALL with _ -> ());
      (try Unix.shutdown dst Unix.SHUTDOWN_ALL with _ -> ())
    | Cut_stream Truncate ->
      (try Unix.shutdown dst Unix.SHUTDOWN_SEND with _ -> ());
      (try Unix.shutdown src Unix.SHUTDOWN_RECEIVE with _ -> ())
    | Unix.Unix_error (_, _, _) -> ()

  let relay t client fl =
    let finish fd = untrack t fd; (try Unix.close fd with _ -> ()) in
    if fl.refused then begin
      count t "refuse";
      finish client
    end
    else begin
      if fl.delay_s > 0.0 then begin
        count t "delay";
        Unix.sleepf fl.delay_s
      end;
      match
        let fd =
          Unix.socket (Unix.domain_of_sockaddr t.upstream) Unix.SOCK_STREAM 0
        in
        (try Unix.connect fd t.upstream
         with e -> (try Unix.close fd with _ -> ()); raise e);
        fd
      with
      | exception _ -> finish client
      | up ->
        track t up;
        let back = Thread.create (fun () -> pump t fl.s2c ~src:up ~dst:client) () in
        pump t fl.c2s ~src:client ~dst:up;
        Thread.join back;
        finish client;
        finish up
    end

  let acceptor t =
    let rec loop () =
      if not t.stopped then begin
        match Unix.select [ t.listen_fd ] [] [] 0.2 with
        | [], _, _ -> loop ()
        | _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | exception Unix.Unix_error (EINTR, _, _) -> loop ()
          | exception Unix.Unix_error (_, _, _) -> if not t.stopped then loop ()
          | fd, _ ->
            let conn =
              Mutex.protect t.lock (fun () ->
                  let n = t.conns in
                  t.conns <- n + 1;
                  n)
            in
            track t fd;
            let fl = connection t.plan ~conn in
            let th = Thread.create (fun () -> relay t fd fl) () in
            Mutex.protect t.lock (fun () -> t.relays <- th :: t.relays);
            loop ())
        | exception Unix.Unix_error (EINTR, _, _) -> loop ()
        | exception Unix.Unix_error (EBADF, _, _) -> ()
      end
    in
    loop ()

  let start ?(backlog = 64) ~plan ~listen ~upstream () =
    (match listen with
    | Unix.ADDR_UNIX path when Sys.file_exists path -> (
      try Unix.unlink path with _ -> ())
    | _ -> ());
    let fd =
      Unix.socket (Unix.domain_of_sockaddr listen) Unix.SOCK_STREAM 0
    in
    (match listen with
    | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | _ -> ());
    (try
       Unix.bind fd listen;
       Unix.listen fd backlog
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    let t =
      {
        plan;
        upstream;
        listen_fd = fd;
        listen_addr = Unix.getsockname fd;
        lock = Mutex.create ();
        stopped = false;
        conns = 0;
        counts = Hashtbl.create 8;
        live = Hashtbl.create 16;
        acceptor = None;
        relays = [];
      }
    in
    t.acceptor <- Some (Thread.create (fun () -> acceptor t) ());
    t

  let addr t = t.listen_addr
  let connections t = Mutex.protect t.lock (fun () -> t.conns)

  let injected t =
    Mutex.protect t.lock (fun () ->
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []))

  let stop t =
    let already = Mutex.protect t.lock (fun () ->
        let s = t.stopped in
        t.stopped <- true;
        s)
    in
    if not already then begin
      (match t.acceptor with Some th -> Thread.join th | None -> ());
      let fds =
        Mutex.protect t.lock (fun () ->
            Hashtbl.fold (fun fd () acc -> fd :: acc) t.live [])
      in
      List.iter
        (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
        fds;
      let relays = Mutex.protect t.lock (fun () -> t.relays) in
      List.iter Thread.join relays;
      (try Unix.close t.listen_fd with _ -> ());
      match t.listen_addr with
      | Unix.ADDR_UNIX path -> ( try Unix.unlink path with _ -> ())
      | _ -> ()
    end
end
