(** Seeded, deterministic filesystem fault plans for the durable
    checkpoint store.

    Where {!Plan} injects faults into simulated MPC rounds and {!Net}
    into real sockets, [Disk] injects them into the disk traffic of a
    checkpoint store: a write torn at a drawn byte offset by a power
    cut, a rename that does not survive the crash because the
    directory update was never synced, a short slot (the later read
    comes up truncated), a flipped byte (bit rot), [ENOSPC] on a write
    attempt, and stale temp-file litter. Every decision is a pure
    function of [(seed, job, round, operation)] — never of wall-clock
    time or call order — so a hostile-disk run is reproducible from
    its seed alone, on any backend.

    The plan itself performs no I/O. [Jobs.Io] reads the decisions and
    applies them to real files; [Jobs.Store] routes all its disk
    traffic through that shim. *)

(** Where a one-shot simulated power cut lands inside one atomic slot
    save (write tmp → fsync tmp → retain previous generation → rename
    → fsync directory). *)
type crash_point =
  | Torn_write of float
      (** The tmp write stops at this fraction of the slot (in [0, 1])
          and the process dies: torn, unsynced litter; the previous
          slot is untouched. *)
  | Before_rename
      (** The tmp file is complete and fsynced but the process dies
          before the rename: complete litter, previous slot
          untouched. *)
  | After_rename
      (** The rename was issued but the directory update was lost at
          the power cut (the fsync-lie/rename-lost case): on reboot
          the old slot is back and the "renamed" bytes survive only as
          tmp litter. *)

type spec = {
  crash : (int * crash_point) option;
      (** One-shot simulated power cut: fires during the checkpoint
          save of this round (1-indexed), at the given point. Resume
          with the crash disarmed, like {!Plan.kill_after}. *)
  rot : float;
      (** Per-save probability that exactly one byte of the slot just
          written is XORed with a non-zero mask — bit rot the
          checksum must catch on the next read. *)
  truncate : float;
      (** Per-save probability the slot just written is cut short at a
          drawn fraction — the later read comes up truncated. *)
  enospc : float;
      (** Per-save probability the first write attempt fails with a
          simulated [ENOSPC] (with probability [enospc²] also the
          second) — always fewer failures than the retry budget, so a
          retried save always eventually lands. *)
  litter : float;
      (** Per-save probability a stale tmp file (a previous crash's
          leftover) is planted next to the slot. *)
}

val zero : spec
(** All probabilities 0, no crash — a transparent disk. *)

val chaos : spec
(** Kitchen-sink preset: rot, truncation, [ENOSPC] and litter all
    enabled at moderate rates (no one-shot crash). *)

type t

val none : t
val is_none : t -> bool

val make : ?seed:int -> spec -> t
(** @raise Invalid_argument when a probability is outside [0, 1], a
    torn-write fraction is outside [0, 1], or a crash round is
    negative. *)

val seed : t -> int
val spec : t -> spec

val of_string : ?seed:int -> string -> t
(** Parses a CLI disk-fault spec: comma-separated [key=value] fields
    among [rot], [truncate], [enospc], [litter] (probabilities) and
    [crash=ROUND:POINT] where [POINT] is [torn:FRAC], [pre-rename] or
    [post-rename]; ["none"]/[""] is {!none}, ["chaos"] the {!chaos}
    preset. A trailing ["@seed=N"] (the {!pp} echo) names the seed and
    takes precedence over [?seed], so a logged plan re-parses to the
    identical plan.
    @raise Invalid_argument on malformed input. *)

val pp : t Fmt.t
(** Canonical [spec@seed=N] form, accepted verbatim by {!of_string}. *)

(** {1 Deterministic decisions}

    Exposed so tests can assert a plan's behaviour without a store. *)

type save_faults = {
  crash : crash_point option;  (** The one-shot power cut, this save. *)
  rot_at : (float * int) option;
      (** Fraction of the slot and XOR mask (1–255) of the flipped
          byte. *)
  truncate_at : float option;  (** Fraction of the slot to keep. *)
  enospc_failures : int;
      (** Leading write attempts that fail with [ENOSPC] (0–2; always
          below the retry budget). *)
  litter : bool;  (** Whether a stale tmp file is planted. *)
}

val no_save_faults : save_faults

val save : t -> job:string -> round:int -> save_faults
(** The complete fault assignment for the checkpoint save of [round]
    by [job] — pure, identical for every call. *)

val job_code : string -> int
(** The stable integer coordinate a job name hashes to (pure, platform
    independent); exposed so sibling tooling can reproduce draws. *)
