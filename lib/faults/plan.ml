type spec = {
  crash : float;
  drop : float;
  duplicate : float;
  delay : float;
  reorder : bool;
  straggle : float;
  transient : float;
  speculate : float;
  kill_after : int option;
  perma : (int * int) option;
}

let zero =
  {
    crash = 0.0;
    drop = 0.0;
    duplicate = 0.0;
    delay = 0.0;
    reorder = false;
    straggle = 0.0;
    transient = 0.0;
    speculate = 0.0;
    kill_after = None;
    perma = None;
  }

let chaos =
  {
    zero with
    crash = 0.15;
    drop = 0.05;
    duplicate = 0.05;
    delay = 0.05;
    reorder = true;
    straggle = 0.05;
    transient = 0.1;
  }

type t =
  | Off
  | On of {
      seed : int;
      spec : spec;
    }

let none = Off
let is_none = function Off -> true | On _ -> false

let make ?(seed = 0) spec =
  let prob name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg (Fmt.str "Faults.Plan.make: %s = %g not in [0, 1]" name v)
  in
  prob "crash" spec.crash;
  prob "drop" spec.drop;
  prob "duplicate" spec.duplicate;
  prob "delay" spec.delay;
  prob "straggle" spec.straggle;
  prob "transient" spec.transient;
  if spec.drop +. spec.duplicate +. spec.delay > 1.0 then
    invalid_arg "Faults.Plan.make: drop + duplicate + delay > 1";
  if spec.speculate < 0.0 then
    invalid_arg
      (Fmt.str "Faults.Plan.make: speculate = %g negative" spec.speculate);
  (match spec.kill_after with
  | Some k when k < 0 ->
    invalid_arg (Fmt.str "Faults.Plan.make: kill = %d negative" k)
  | _ -> ());
  (match spec.perma with
  | Some (r, s) when r < 1 || s < 0 ->
    invalid_arg
      (Fmt.str "Faults.Plan.make: perma = %d:%d (round must be >= 1, server \
                >= 0)" r s)
  | _ -> ());
  On { seed; spec }

let seed = function Off -> 0 | On p -> p.seed
let spec = function Off -> zero | On p -> p.spec

(* ------------------------------------------------------------------ *)
(* Hashing: a splitmix64-style mixer folded over (seed, label,
   coordinates). Pure integer arithmetic — identical on every backend,
   platform and call order. Each decision kind gets its own label so
   e.g. crash and straggle draws at the same coordinates stay
   independent. *)

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash ~seed ~label a b c =
  let fold h x =
    mix (Int64.add (Int64.mul h 0x9e3779b97f4a7c15L) (Int64.of_int x))
  in
  let h = mix (Int64.logxor (Int64.of_int seed) 0x7c15d3a3f0e1b529L) in
  fold (fold (fold (fold h label) a) b) c

(* Top 53 bits as a float in [0, 1). *)
let unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let draw ~seed ~label a b c = unit_float (hash ~seed ~label a b c)

let crash_label = 1
and fate_label = 2
and reorder_label = 3
and transient_label = 4
and straggle_label = 5
and straggle_len_label = 6
and tie_label = 7

(* ------------------------------------------------------------------ *)

type phase = Communicate | Merge | Compute

let phase_name = function
  | Communicate -> "communicate"
  | Merge -> "merge"
  | Compute -> "compute"

let phase_code = function Communicate -> 1 | Merge -> 2 | Compute -> 3

type fate = Deliver | Drop | Duplicate | Delay

let crashes t ~round ~server =
  match t with
  | Off -> false
  | On { seed; spec } ->
    spec.crash > 0.0
    && draw ~seed ~label:crash_label round server 0 < spec.crash

let fate t ~round ~src ~index =
  match t with
  | Off -> Deliver
  | On { seed; spec } ->
    if spec.drop = 0.0 && spec.duplicate = 0.0 && spec.delay = 0.0 then
      Deliver
    else begin
      let u = draw ~seed ~label:fate_label round src index in
      if u < spec.drop then Drop
      else if u < spec.drop +. spec.duplicate then Duplicate
      else if u < spec.drop +. spec.duplicate +. spec.delay then Delay
      else Deliver
    end

let permute t ~round ~lane xs =
  match t with
  | Off -> xs
  | On { spec; _ } when not spec.reorder -> xs
  | On { seed; _ } -> (
    match xs with
    | [] | [ _ ] -> xs
    | _ ->
      (* Fisher–Yates with hash-derived indices: the same (seed, round,
         lane) always yields the same permutation of equal-length
         batches. *)
      let a = Array.of_list xs in
      for i = Array.length a - 1 downto 1 do
        let h = hash ~seed ~label:reorder_label round lane i in
        let j =
          Int64.to_int
            (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int (i + 1)))
        in
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      done;
      Array.to_list a)

exception Transient of string

let is_transient = function Transient _ -> true | _ -> false
let max_attempts = 4

let transient_failures t ~round ~phase ~task =
  match t with
  | Off -> 0
  | On { seed; spec } ->
    if spec.transient <= 0.0 then 0
    else begin
      let u = draw ~seed ~label:transient_label round (phase_code phase) task in
      (* P(≥1 failure) = transient, P(2 failures) = transient²; never
         more than max_attempts - 2, so retries always succeed. *)
      if u < spec.transient *. spec.transient then 2
      else if u < spec.transient then 1
      else 0
    end

let inject t ~round ~phase ~task ~attempt =
  if attempt <= transient_failures t ~round ~phase ~task then
    raise
      (Transient
         (Fmt.str "injected transient fault (round %d, %s, task %d, attempt %d)"
            round (phase_name phase) task attempt))

let straggle_delay t ~round ~phase ~task =
  match t with
  | Off -> 0.0
  | On { seed; spec } ->
    if
      spec.straggle > 0.0
      && draw ~seed ~label:straggle_label round (phase_code phase) task
         < spec.straggle
    then
      0.0001
      +. 0.0009
         *. draw ~seed ~label:straggle_len_label round (phase_code phase) task
    else 0.0

let straggle t ~round ~phase ~task =
  let d = straggle_delay t ~round ~phase ~task in
  if d > 0.0 then Unix.sleepf d

let speculation_budget = function Off -> 0.0 | On { spec; _ } -> spec.speculate

let speculation_tie t ~round ~phase ~task =
  match t with
  | Off -> `Primary
  | On { seed; _ } ->
    if draw ~seed ~label:tie_label round (phase_code phase) task < 0.5 then
      `Primary
    else `Backup

let kill_after = function Off -> None | On { spec; _ } -> spec.kill_after

let perma_crash t ~round =
  match t with
  | Off -> None
  | On { spec; _ } -> (
    match spec.perma with
    | Some (r, s) when r = round -> Some s
    | _ -> None)

(* ------------------------------------------------------------------ *)

let of_string ?(seed = 0) s =
  match String.trim s with
  | "" | "none" -> none
  | "chaos" -> make ~seed chaos
  | s ->
    let parse_field spec field =
      let fail () =
        invalid_arg
          (Fmt.str
             "Faults.Plan.of_string: bad field %S (expected key=float among \
              crash/drop/dup/delay/straggle/transient/speculate, kill=ROUND, \
              perma=ROUND:SERVER, or the flag reorder)"
             field)
      in
      match String.trim field with
      | "" -> spec
      | "reorder" -> { spec with reorder = true }
      | field -> (
        match String.index_opt field '=' with
        | None -> fail ()
        | Some i ->
          let key = String.trim (String.sub field 0 i) in
          let v =
            String.trim (String.sub field (i + 1) (String.length field - i - 1))
          in
          let f () =
            match float_of_string_opt v with Some f -> f | None -> fail ()
          in
          let n () =
            match int_of_string_opt v with Some n -> n | None -> fail ()
          in
          (match key with
          | "crash" -> { spec with crash = f () }
          | "drop" -> { spec with drop = f () }
          | "dup" | "duplicate" -> { spec with duplicate = f () }
          | "delay" -> { spec with delay = f () }
          | "straggle" -> { spec with straggle = f () }
          | "transient" -> { spec with transient = f () }
          | "speculate" -> { spec with speculate = f () }
          | "kill" -> { spec with kill_after = Some (n ()) }
          | "perma" -> (
            match String.index_opt v ':' with
            | None -> fail ()
            | Some j ->
              let r = String.sub v 0 j
              and s = String.sub v (j + 1) (String.length v - j - 1) in
              (match (int_of_string_opt r, int_of_string_opt s) with
              | Some r, Some s -> { spec with perma = Some (r, s) }
              | _ -> fail ()))
          | _ -> fail ()))
    in
    let spec =
      List.fold_left parse_field zero (String.split_on_char ',' s)
    in
    make ~seed spec

let pp ppf = function
  | Off -> Fmt.string ppf "none"
  | On { seed; spec } ->
    let fields =
      List.filter_map
        (fun (k, v) -> if v > 0.0 then Some (Fmt.str "%s=%g" k v) else None)
        [
          ("crash", spec.crash);
          ("drop", spec.drop);
          ("dup", spec.duplicate);
          ("delay", spec.delay);
          ("straggle", spec.straggle);
          ("transient", spec.transient);
          ("speculate", spec.speculate);
        ]
      @ (match spec.kill_after with
        | Some k -> [ Fmt.str "kill=%d" k ]
        | None -> [])
      @ (match spec.perma with
        | Some (r, s) -> [ Fmt.str "perma=%d:%d" r s ]
        | None -> [])
      @ (if spec.reorder then [ "reorder" ] else [])
    in
    let body = match fields with [] -> "none" | _ -> String.concat "," fields in
    Fmt.pf ppf "%s@@seed=%d" body seed
