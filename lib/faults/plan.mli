(** Seeded, deterministic fault plans.

    A plan decides, for every coordinate of a simulated execution —
    (round, server) for crashes, (round, source, message index) for
    message fates, (round, phase, task) for task faults — whether a
    fault fires. Decisions are pure functions of the plan's seed and
    those coordinates, {e never} of call order or wall-clock time, so a
    faulty run is reproducible bit-for-bit on any backend: the pool
    executor may interleave tasks arbitrarily and every task still draws
    the same faults as the sequential one.

    [none] is the distinguished empty plan: consumers test {!is_none}
    and dispatch to their untouched fault-free code path, so fault
    injection that is off costs nothing. *)

type spec = {
  crash : float;  (** Per-round, per-server crash-stop probability. *)
  drop : float;  (** Per-message drop probability. *)
  duplicate : float;  (** Per-message duplication probability. *)
  delay : float;
      (** Per-message straggler probability: the message misses the
          round's main wave and arrives with the recovery traffic. *)
  reorder : bool;  (** Deterministically shuffle each source's messages. *)
  straggle : float;
      (** Per-task straggler probability: the task sleeps briefly,
          perturbing real scheduling without changing any result. *)
  transient : float;
      (** Per-task transient-fault probability. An affected task raises
          {!Transient} on its first (with probability [transient²] also
          its second) attempt; always fewer than [max_attempts - 1]
          failures, so retried tasks always eventually succeed. *)
  speculate : float;
      (** Speculation budget in seconds; 0 disables mitigation. A task
          whose straggler delay reaches the budget is re-executed as a
          deterministic backup copy after waiting only the budget — see
          [Runtime.Executor.speculate]. *)
  kill_after : int option;
      (** Simulated process death: the supervised job raises
          [Jobs.Supervisor.Killed] right after persisting the
          checkpoint of this round (0 = before any work). *)
  perma : (int * int) option;
      (** [(round, server)]: the server permanently crash-stops before
          that round (1-indexed); the job supervisor rebalances the
          survivors. *)
}

val zero : spec
(** All probabilities 0, [reorder = false]. *)

val chaos : spec
(** A kitchen-sink preset: crashes, message faults, reordering,
    stragglers and transient faults all enabled at moderate rates. *)

type t

val none : t
(** The empty plan: no decision ever fires; {!is_none} holds. *)

val is_none : t -> bool

val make : ?seed:int -> spec -> t
(** @raise Invalid_argument when a probability is outside [0, 1] or
    [drop + duplicate + delay > 1]. *)

val seed : t -> int
val spec : t -> spec

val of_string : ?seed:int -> string -> t
(** Parses a CLI fault spec: comma-separated [key=value] fields among
    [crash], [drop], [dup], [delay], [straggle], [transient],
    [speculate] (floats), [kill=ROUND], [perma=ROUND:SERVER] (ints)
    and the bare flag [reorder]; ["none"] or [""] is {!none} and
    ["chaos"] is the {!chaos} preset.
    @raise Invalid_argument on malformed input. *)

val pp : t Fmt.t
(** Canonical form accepted by {!of_string}, plus the seed. *)

val draw : seed:int -> label:int -> int -> int -> int -> float
(** The raw deterministic draw underlying every decision: a uniform
    float in [0, 1) that is a pure function of [(seed, label, a, b, c)].
    Exposed so sibling fault models ({!Net}) share one mixer; label
    spaces must not overlap (Plan uses 1–7, Net uses 100+). *)

(** {1 Deterministic decisions} *)

type phase = Communicate | Merge | Compute

val phase_name : phase -> string

type fate =
  | Deliver
  | Drop  (** Lost in the main wave; retransmitted during recovery. *)
  | Duplicate  (** Shipped twice (set-union merge absorbs the copy). *)
  | Delay  (** Held back; delivered with the recovery traffic. *)

val crashes : t -> round:int -> server:int -> bool
(** Whether the server crash-stops during this round. *)

val fate : t -> round:int -> src:int -> index:int -> fate
(** Fate of source [src]'s [index]-th message of the round. *)

val permute : t -> round:int -> lane:int -> 'a list -> 'a list
(** Deterministic shuffle of a message batch when [reorder] is set;
    identity otherwise. [lane] disambiguates batches within a round
    (typically the source server). *)

exception Transient of string
(** The injected transient task fault. *)

val is_transient : exn -> bool

val max_attempts : int
(** Retry budget sufficient for any plan's transient faults (4). *)

val transient_failures : t -> round:int -> phase:phase -> task:int -> int
(** How many leading attempts of this task fail (0, 1 or 2). *)

val inject : t -> round:int -> phase:phase -> task:int -> attempt:int -> unit
(** Raises {!Transient} iff [attempt <= transient_failures] (attempts
    are 1-based). Call at the top of a retryable task body. *)

val straggle : t -> round:int -> phase:phase -> task:int -> unit
(** Sleeps 0.1–1 ms when the task is selected as a straggler. Perturbs
    real parallel scheduling; never changes a result. *)

val straggle_delay : t -> round:int -> phase:phase -> task:int -> float
(** The delay {!straggle} would sleep, without sleeping — pure, so a
    mitigating scheduler can compare it to its speculation budget
    before deciding to wait or re-execute. 0 when the task is not a
    straggler. *)

(** {1 Job-level failures} *)

val speculation_budget : t -> float
(** The plan's [speculate] field (0 = speculation off). *)

val speculation_tie : t -> round:int -> phase:phase -> task:int ->
  [ `Primary | `Backup ]
(** Seed-ordered tie-break between a straggling primary and its backup
    copy when both would finish at the deadline — a pure draw, so seq
    and pool backends pick the same winner. *)

val kill_after : t -> int option
(** The plan's [kill] field: simulated process death after this
    round's checkpoint. *)

val perma_crash : t -> round:int -> int option
(** [perma_crash t ~round] is [Some s] iff the plan's [perma] entry
    names exactly this (1-indexed) round: server [s] is permanently
    gone before the round starts. *)
