(** Seeded, deterministic fault plans.

    A plan decides, for every coordinate of a simulated execution —
    (round, server) for crashes, (round, source, message index) for
    message fates, (round, phase, task) for task faults — whether a
    fault fires. Decisions are pure functions of the plan's seed and
    those coordinates, {e never} of call order or wall-clock time, so a
    faulty run is reproducible bit-for-bit on any backend: the pool
    executor may interleave tasks arbitrarily and every task still draws
    the same faults as the sequential one.

    [none] is the distinguished empty plan: consumers test {!is_none}
    and dispatch to their untouched fault-free code path, so fault
    injection that is off costs nothing. *)

type spec = {
  crash : float;  (** Per-round, per-server crash-stop probability. *)
  drop : float;  (** Per-message drop probability. *)
  duplicate : float;  (** Per-message duplication probability. *)
  delay : float;
      (** Per-message straggler probability: the message misses the
          round's main wave and arrives with the recovery traffic. *)
  reorder : bool;  (** Deterministically shuffle each source's messages. *)
  straggle : float;
      (** Per-task straggler probability: the task sleeps briefly,
          perturbing real scheduling without changing any result. *)
  transient : float;
      (** Per-task transient-fault probability. An affected task raises
          {!Transient} on its first (with probability [transient²] also
          its second) attempt; always fewer than [max_attempts - 1]
          failures, so retried tasks always eventually succeed. *)
}

val zero : spec
(** All probabilities 0, [reorder = false]. *)

val chaos : spec
(** A kitchen-sink preset: crashes, message faults, reordering,
    stragglers and transient faults all enabled at moderate rates. *)

type t

val none : t
(** The empty plan: no decision ever fires; {!is_none} holds. *)

val is_none : t -> bool

val make : ?seed:int -> spec -> t
(** @raise Invalid_argument when a probability is outside [0, 1] or
    [drop + duplicate + delay > 1]. *)

val seed : t -> int
val spec : t -> spec

val of_string : ?seed:int -> string -> t
(** Parses a CLI fault spec: comma-separated [key=value] fields among
    [crash], [drop], [dup], [delay], [straggle], [transient] (floats)
    and the bare flag [reorder]; ["none"] or [""] is {!none} and
    ["chaos"] is the {!chaos} preset.
    @raise Invalid_argument on malformed input. *)

val pp : t Fmt.t
(** Canonical form accepted by {!of_string}, plus the seed. *)

(** {1 Deterministic decisions} *)

type phase = Communicate | Merge | Compute

val phase_name : phase -> string

type fate =
  | Deliver
  | Drop  (** Lost in the main wave; retransmitted during recovery. *)
  | Duplicate  (** Shipped twice (set-union merge absorbs the copy). *)
  | Delay  (** Held back; delivered with the recovery traffic. *)

val crashes : t -> round:int -> server:int -> bool
(** Whether the server crash-stops during this round. *)

val fate : t -> round:int -> src:int -> index:int -> fate
(** Fate of source [src]'s [index]-th message of the round. *)

val permute : t -> round:int -> lane:int -> 'a list -> 'a list
(** Deterministic shuffle of a message batch when [reorder] is set;
    identity otherwise. [lane] disambiguates batches within a round
    (typically the source server). *)

exception Transient of string
(** The injected transient task fault. *)

val is_transient : exn -> bool

val max_attempts : int
(** Retry budget sufficient for any plan's transient faults (4). *)

val transient_failures : t -> round:int -> phase:phase -> task:int -> int
(** How many leading attempts of this task fail (0, 1 or 2). *)

val inject : t -> round:int -> phase:phase -> task:int -> attempt:int -> unit
(** Raises {!Transient} iff [attempt <= transient_failures] (attempts
    are 1-based). Call at the top of a retryable task body. *)

val straggle : t -> round:int -> phase:phase -> task:int -> unit
(** Sleeps 0.1–1 ms when the task is selected as a straggler. Perturbs
    real parallel scheduling; never changes a result. *)
