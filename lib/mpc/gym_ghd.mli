(** GYM on possibly cyclic queries via tree decompositions
    (Section 3.2 / [6]).

    Phase 1 evaluates each bag of the decomposition — a join of the
    atoms grouped there — with one round of HyperCube on a dedicated
    slice of the cluster; phase 2 runs the distributed Yannakakis
    semi-join and join passes over the bag results, which form an
    acyclic query by the running-intersection property. The depth of the
    decomposition governs the number of rounds; the bag width governs
    the phase-1 cost — the trade-off the paper highlights. *)

open Lamp_relational

val run :
  ?seed:int ->
  ?decomposition:Lamp_cq.Decomposition.t list ->
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  ?job:Lamp_jobs.Supervisor.t ->
  p:int ->
  Lamp_cq.Ast.t ->
  Instance.t ->
  Instance.t * Stats.t * int
(** [(result, stats, width)]. Without an explicit decomposition, acyclic
    queries use their GYO forest (one atom per bag) and cyclic queries
    the min-fill heuristic.

    With [job], the run is a supervised job whose round 1 is the whole
    of phase 1 and whose rounds 2.. are the phase-2 GYM steps
    (composed via {!Yannakakis.gym_job}); checkpoints carry the bag
    results, so a kill between the phases resumes without re-running
    any HyperCube join. Both phases place data by functions of p, so a
    permanent crash-stop restarts the job from round 0 on the p−1
    survivors.
    @raise Invalid_argument on non-positive queries or an invalid
    decomposition. *)
