(** The grid ("drug interaction") join of Example 3.1(1b).

    R and S are divided into ⌊√p⌋ groups each by tuple position — not by
    value — and every pair of groups is joined on its own server. Each
    R-group is replicated across a row of the server grid and each
    S-group across a column, so the load is O(m/√p) {e independently of
    skew}. The price is replication: total communication is
    Θ(m·√p). *)

open Lamp_relational

val query : Lamp_cq.Ast.t

val run :
  ?materialize:bool ->
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  p:int ->
  Instance.t ->
  Instance.t * Stats.t
