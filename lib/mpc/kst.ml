open Lamp_relational
open Lamp_distribution
open Lamp_cq

let h ~seed ~p v = Policy.hash_value ~seed ~buckets:p v
let plan_of = function Some f -> f | None -> Lamp_faults.Plan.none

(* Facts parked for round 2 are renamed with this prefix so the round-1
   light evaluation (which matches atoms by relation name) never sees
   them. *)
let stage_prefix = "kst!"
let plen = String.length stage_prefix
let stage rel = stage_prefix ^ rel

let is_staged rel =
  String.length rel > plen && String.sub rel 0 plen = stage_prefix

let unstage rel = String.sub rel plen (String.length rel - plen)

(* One heavy configuration: a set S of variables pinned to heavy values
   (c_heavy, sorted by variable), plus a HyperCube subgrid over the
   remaining light variables (c_dims), laid out at servers
   [(c_offset + linear index) mod p]. *)
type combo = {
  c_heavy : (string * Value.t) list;
  c_dims : (string * int) array;
  c_offset : int;
}

(* [args] can instantiate the atom: arity, constants and repeated
   variables all agree. *)
let compatible a args =
  let terms = a.Ast.terms in
  List.length terms = Array.length args
  &&
  let ok = ref true and seen = Hashtbl.create 4 in
  List.iteri
    (fun i t ->
      match t with
      | Ast.Const c -> if not (Value.equal c args.(i)) then ok := false
      | Ast.Var v -> (
        match Hashtbl.find_opt seen v with
        | Some j -> if not (Value.equal args.(j) args.(i)) then ok := false
        | None -> Hashtbl.add seen v i))
    terms;
  !ok

(* Variable bindings of a compatible atom instantiation, sorted. *)
let bindings a args =
  let b = ref [] in
  List.iteri
    (fun i t -> match t with Ast.Var v -> b := (v, args.(i)) :: !b | _ -> ())
    a.Ast.terms;
  List.sort_uniq compare !b

(* The tuple belongs to this configuration in this atom's role exactly
   when its heavy signature is S restricted to the atom's variables,
   with the configuration's values. Light positions need no check: a
   variable whose binding were heavy would appear in [hsig] and fail
   the subset test. *)
let combo_matches combo bnd hsig =
  List.for_all (fun (v, _) -> List.mem_assoc v combo.c_heavy) hsig
  && List.for_all
       (fun (v, value) ->
         match List.assoc_opt v bnd with
         | None -> true
         | Some x -> Value.equal x value)
       combo.c_heavy

(* Servers of the configuration's subgrid responsible for the tuple:
   dimensions whose variable the atom binds are pinned to the hashed
   coordinate, the others are replicated over. *)
let cells ~seed ~p combo bnd =
  let nd = Array.length combo.c_dims in
  let rec go i lin acc =
    if i = nd then ((combo.c_offset + lin) mod p) :: acc
    else
      let v, share = combo.c_dims.(i) in
      match List.assoc_opt v bnd with
      | Some x ->
        go (i + 1) ((lin * share) + h ~seed:(seed + 131 + i) ~p:share x) acc
      | None ->
        let r = ref acc in
        for c = 0 to share - 1 do
          r := go (i + 1) ((lin * share) + c) !r
        done;
        !r
  in
  go 0 0 []

let run ?(seed = 0) ?threshold ?executor ?faults ?job ~p query instance =
  if p <= 0 then invalid_arg "Kst.run: p must be positive";
  if not (Ast.is_positive query) then
    invalid_arg "Kst.run: positive conjunctive queries only";
  Lamp_obs.Sketch.set_context "kst";
  let atoms = query.Ast.body in
  List.iter
    (fun a ->
      let n = List.length a.Ast.terms in
      if n < 1 || n > 2 then
        invalid_arg "Kst.run: body atoms must be unary or binary")
    atoms;
  let head_rel = query.Ast.head.Ast.rel in
  let vars = List.sort_uniq String.compare (Ast.body_vars query) in
  let body_rels = List.sort_uniq String.compare (List.map (fun a -> a.Ast.rel) atoms) in
  let m =
    List.fold_left
      (fun acc rel -> max acc (Tuple.Set.cardinal (Instance.tuples instance rel)))
      1 body_rels
  in
  (* Columns in which each variable occurs, for its heavy-hitter set. *)
  let occurrences v =
    List.sort_uniq compare
      (List.concat_map
         (fun a ->
           List.mapi (fun i t -> (i, t)) a.Ast.terms
           |> List.filter_map (fun (i, t) ->
                  match t with
                  | Ast.Var v' when String.equal v v' -> Some (a.Ast.rel, i)
                  | _ -> None))
         atoms)
  in
  let deg_tbl = Hashtbl.create 8 in
  let degree rel pos c =
    let key = (rel, pos) in
    let map =
      match Hashtbl.find_opt deg_tbl key with
      | Some map -> map
      | None ->
        let map = Skew.degrees instance ~rel ~pos in
        Hashtbl.add deg_tbl key map;
        map
    in
    match Value.Map.find_opt c map with Some d -> d | None -> 0
  in
  let sizes a = Tuple.Set.cardinal (Instance.tuples instance a.Ast.rel) in
  let combos_count = ref 0 in
  (* The whole plan — threshold, heavy-hitter sets, the configuration
     list and every subgrid — depends on p, so it is rebuilt (memoized)
     per topology: a restart after rebalancing replans for the
     survivor count. *)
  let plans = Hashtbl.create 2 in
  let rounds_for ~p =
    match Hashtbl.find_opt plans p with
    | Some rounds -> rounds
    | None ->
      (* Doubling the degree threshold until the configuration count
         fits the cap bounds the replication of all-light atoms into
         the subgrids; values pushed back under the threshold fall
         through to the one-round light plan, which is always sound. *)
      let cap = max 8 (2 * int_of_float (sqrt (float_of_int p))) in
      let rec settle threshold =
        let heavy =
          List.map
            (fun v ->
              ( v,
                List.fold_left
                  (fun acc (rel, pos) ->
                    Value.Set.union acc
                      (Skew.heavy_hitters instance ~rel ~pos ~threshold))
                  Value.Set.empty (occurrences v) ))
            vars
        in
        let hvars =
          List.filter (fun (_, s) -> not (Value.Set.is_empty s)) heavy
        in
        let hv = Array.of_list hvars in
        let nh = Array.length hv in
        let configs = ref [] in
        for mask = 1 to (1 lsl nh) - 1 do
          let sel = ref [] in
          for i = nh - 1 downto 0 do
            if mask land (1 lsl i) <> 0 then
              sel :=
                (fst hv.(i), Value.Set.elements (snd hv.(i))) :: !sel
          done;
          let rec prod acc = function
            | [] -> configs := List.rev acc :: !configs
            | (v, values) :: rest ->
              List.iter (fun x -> prod ((v, x) :: acc) rest) values
          in
          prod [] !sel
        done;
        let configs = List.rev !configs in
        if List.length configs > cap && threshold < m then
          settle (threshold * 2)
        else (heavy, configs)
      in
      let threshold0 =
        match threshold with
        | Some t -> max 1 t
        | None -> Skew.default_threshold ~m ~p
      in
      let heavy, configs = settle threshold0 in
      let heavy_of v =
        match List.assoc_opt v heavy with
        | Some s -> s
        | None -> Value.Set.empty
      in
      let ncombos = List.length configs in
      combos_count := ncombos;
      let p_res = max 1 (p / max 1 ncombos) in
      (* Subgrid shares of one configuration: HyperCube over the
         residual query (heavy variables frozen to their values), with
         sizes estimated from column degrees. *)
      let dims_of config =
        let svars = List.map fst config in
        let l = List.filter (fun v -> not (List.mem v svars)) vars in
        if l = [] then [||]
        else begin
          let subst = function
            | Ast.Var v as t -> (
              match List.assoc_opt v config with
              | Some x -> Ast.Const x
              | None -> t)
            | t -> t
          in
          let body =
            List.map
              (fun a -> Ast.atom a.Ast.rel (List.map subst a.Ast.terms))
              atoms
          in
          let head = Ast.atom "Hres" (List.map (fun v -> Ast.Var v) l) in
          let rq = Ast.make ~head ~body () in
          let rsizes a =
            let consts =
              List.mapi (fun i t -> (i, t)) a.Ast.terms
              |> List.filter_map (fun (i, t) ->
                     match t with Ast.Const c -> Some (i, c) | _ -> None)
            in
            match consts with
            | [] -> sizes a
            | cs ->
              List.fold_left
                (fun acc (i, c) -> min acc (degree a.Ast.rel i c))
                max_int cs
          in
          let shares, _ =
            Shares.optimize ~objective:Shares.Max_load ~p:p_res ~sizes:rsizes
              rq
          in
          Array.of_list
            (List.map
               (fun v ->
                 ( v,
                   match List.assoc_opt v shares with
                   | Some s -> max 1 s
                   | None -> 1 ))
               l)
        end
      in
      let combos, _ =
        List.fold_left
          (fun (acc, off) config ->
            let dims = dims_of config in
            let size = Array.fold_left (fun g (_, s) -> g * s) 1 dims in
            ( { c_heavy = config; c_dims = dims; c_offset = off mod p } :: acc,
              off + size ))
          ([], 0) configs
      in
      let combos = List.rev combos in
      let shares, _ = Shares.optimize ~objective:Shares.Max_load ~p ~sizes query in
      let policy, _ =
        Policy.hypercube ~seed ~name:"kst-light" ~query ~shares ()
      in
      let atoms_of rel = List.filter (fun a -> String.equal a.Ast.rel rel) atoms in
      let light_binding b =
        List.for_all (fun (v, x) -> not (Value.Set.mem x (heavy_of v))) b
      in
      let rounds =
        [|
          {
            (* Round 1: light roles run the one-round HyperCube; every
               query-relevant fact additionally parks at its source
               under a staged name, awaiting round 2. *)
            Cluster.communicate =
              (fun src local ->
                Instance.fold
                  (fun f acc ->
                    let rel = Fact.rel f and args = Fact.args f in
                    let roles =
                      List.filter_map
                        (fun a ->
                          if compatible a args then Some (bindings a args)
                          else None)
                        (atoms_of rel)
                    in
                    if roles = [] then acc
                    else begin
                      let acc =
                        if List.exists light_binding roles then
                          List.fold_left
                            (fun acc dst -> (dst, f) :: acc)
                            acc
                            (Policy.responsible_nodes policy f)
                        else acc
                      in
                      if ncombos > 0 then
                        (src, Fact.make (stage rel) args) :: acc
                      else acc
                    end)
                  local []);
            compute =
              (fun _ ~received ~previous:_ ->
                let light =
                  Instance.filter (fun f -> not (is_staged (Fact.rel f))) received
                in
                let staged =
                  Instance.filter (fun f -> is_staged (Fact.rel f)) received
                in
                Instance.union (Eval.eval ~strategy:Eval.Wcoj query light) staged);
          };
          {
            (* Round 2: staged tuples fan out to every configuration
               whose heavy assignment matches one of their atom roles,
               pinned by the light coordinates; round-1 output stays. *)
            Cluster.communicate =
              (fun src local ->
                Instance.fold
                  (fun f acc ->
                    let rel = Fact.rel f in
                    if String.equal rel head_rel then (src, f) :: acc
                    else if is_staged rel then begin
                      let orig = unstage rel in
                      let args = Fact.args f in
                      let g = Fact.make orig args in
                      let dsts =
                        List.concat_map
                          (fun a ->
                            if compatible a args then begin
                              let b = bindings a args in
                              let hsig =
                                List.filter
                                  (fun (v, x) -> Value.Set.mem x (heavy_of v))
                                  b
                              in
                              List.concat_map
                                (fun c ->
                                  if combo_matches c b hsig then
                                    cells ~seed ~p c b
                                  else [])
                                combos
                            end
                            else [])
                          (atoms_of orig)
                      in
                      List.fold_left
                        (fun acc dst -> (dst, g) :: acc)
                        acc
                        (List.sort_uniq compare dsts)
                    end
                    else acc)
                  local []);
            compute =
              (fun _ ~received ~previous:_ ->
                let prior =
                  Instance.filter (fun f -> String.equal (Fact.rel f) head_rel) received
                in
                let rest =
                  Instance.filter
                    (fun f -> not (String.equal (Fact.rel f) head_rel))
                    received
                in
                Instance.union prior (Eval.eval ~strategy:Eval.Wcoj query rest));
          };
        |]
      in
      Hashtbl.add plans p rounds;
      rounds
  in
  let cluster = ref (Cluster.create ?executor ?faults ~p instance) in
  Cluster.supervise ?job ~name:"kst" ~faults:(plan_of faults)
    (Multi_round.cluster_script ?executor ?faults cluster ~rounds_for
       ~rebalance:(fun ~round ~dead ->
         (* Staged tuples park at their round-1 servers and the
            subgrid layout is a function of p — both cross-round
            rendezvous break under a topology change, so a permanent
            crash restarts the job from round 0 on the survivors. *)
         Multi_round.rebalance_restart ?executor ?faults instance cluster
           ~round ~dead));
  (* Reflect the topology the run actually finished under. *)
  ignore (rounds_for ~p:(Cluster.p !cluster));
  (Cluster.union_all !cluster, Cluster.stats !cluster, !combos_count)
