(** Multi-round MPC algorithms (Example 3.1(2) and Section 3.2).

    The triangle query admits a two-round evaluation by cascading binary
    joins, whose intermediate result K = R ⋈ S can far exceed the input;
    and a skew-resilient two-round evaluation that restores the
    skew-free load m/p^(2/3) that a single round cannot achieve on
    skewed data (where it is stuck at m/√p). *)

open Lamp_relational

(** {1 Script plumbing}

    The job skeleton every cluster-backed multi-round algorithm shares
    (including {!Kst}): a per-topology sequence of rounds over one
    cluster held in a ref, checkpointed through
    {!Cluster.snapshot}/{!Cluster.restore}. *)

val cluster_script :
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  Cluster.t ref ->
  rounds_for:(p:int -> Cluster.round array) ->
  rebalance:(round:int -> dead:int -> [ `Continue | `Restart ]) ->
  Lamp_jobs.Supervisor.script
(** [rounds_for] is re-consulted at every step with the cluster's
    current [p], so a rebalanced job rebuilds its remaining rounds for
    the shrunk topology. *)

val rebalance_shrink :
  Cluster.t ref -> round:int -> dead:int -> [ `Continue | `Restart ]
(** Survivor rebalancing for algorithms whose every round rehashes from
    scratch: shrink p → p−1, rehash the dead server's local onto the
    survivors, continue from the current round. *)

val rebalance_restart :
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  Instance.t ->
  Cluster.t ref ->
  round:int ->
  dead:int ->
  [ `Continue | `Restart ]
(** Restart policy for algorithms that rendezvous across rounds on a
    p-dependent hash: a topology change invalidates the parked
    placement, so the job restarts from round 0 on a fresh p−1 cluster,
    charging the dead server's resident facts as replay traffic. *)

(** {1 The paper's two-round triangle plans} *)

val cascade_triangle :
  ?seed:int ->
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  ?job:Lamp_jobs.Supervisor.t ->
  p:int ->
  Instance.t ->
  Instance.t * Stats.t
(** Two-round cascade: round 1 repartitions R and S on y and joins them
    into K; round 2 repartitions K and T on the pair (z, x) and joins.
    Correct, but the load includes the intermediate |R ⋈ S|.

    With [job], runs under {!Cluster.supervise}: checkpointed after
    every round, resumable, and — because both rounds rehash from
    scratch — a permanent crash-stop is repaired by shrinking to the
    survivors and continuing from the last checkpoint. *)

val skew_resilient_triangle :
  ?seed:int ->
  ?threshold:int ->
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  ?job:Lamp_jobs.Supervisor.t ->
  p:int ->
  Instance.t ->
  Instance.t * Stats.t * int
(** Heavy/light two-round triangle for skew concentrated in the join
    attribute y (the paper's heavy-hitter scenario): light tuples run
    through the one-round HyperCube; tuples with a heavy y follow a
    semi-join plan anchored at T, routed on the light attributes x and
    z across the two rounds. Returns the result, the load statistics and
    the number of heavy hitters detected. The default threshold is
    m/p^(1/3).

    With [job], runs under {!Cluster.supervise}. Heavy S parks at
    h_p(z) in round 1 and is met there by the partial matches in round
    2 — a cross-round rendezvous on a p-dependent hash — so a
    permanent crash-stop restarts the job from round 0 on the p−1
    survivors (with threshold, heavy hitters and shares re-planned for
    the shrunk topology). *)
