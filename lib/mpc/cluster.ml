open Lamp_relational
module Executor = Lamp_runtime.Executor
module Metrics = Lamp_runtime.Metrics
module Trace = Lamp_obs.Trace
module Sketch = Lamp_obs.Sketch
module Plan = Lamp_faults.Plan

type t = {
  p : int;
  executor : Executor.t;
  faults : Plan.t;
  mutable locals : Instance.t array;
  mutable round_stats : Stats.round_stats list;
  mutable recoveries : Stats.recovery list;
  initial_max : int;
  initial_total : int; (* m of the paper's bounds, for per-round ε *)
}

type round = {
  communicate : int -> Instance.t -> (int * Fact.t) list;
  compute : int -> received:Instance.t -> previous:Instance.t -> Instance.t;
}

let check_p p = if p < 1 then invalid_arg "Cluster: p must be >= 1"

let create_with ?(executor = Executor.sequential) ?(faults = Plan.none) locals =
  check_p (Array.length locals);
  let initial_max =
    Array.fold_left (fun acc i -> max acc (Instance.cardinal i)) 0 locals
  in
  let initial_total =
    Array.fold_left (fun acc i -> acc + Instance.cardinal i) 0 locals
  in
  {
    p = Array.length locals;
    executor;
    faults;
    locals = Array.copy locals;
    round_stats = [];
    recoveries = [];
    initial_max;
    initial_total;
  }

(* Round-robin partitioning: every server receives ⌈m/p⌉ or ⌊m/p⌋ facts,
   the model's "1/p-th of the data" assumption. *)
let create ?executor ?faults ~p instance =
  check_p p;
  let locals = Array.make p Instance.empty in
  List.iteri
    (fun k f -> locals.(k mod p) <- Instance.add f locals.(k mod p))
    (Instance.facts instance);
  create_with ?executor ?faults locals

let p t = t.p
let executor t = t.executor
let faults t = t.faults
let locals t = Array.copy t.locals
let local t i = t.locals.(i)

let union_all t =
  Array.fold_left Instance.union Instance.empty t.locals

(* ------------------------------------------------------------------ *)
(* Trace emission (all read-only on the round's data; nothing below
   may touch [locals], [received] contents or [round_stats])           *)

let load_hist = Trace.histogram "mpc.load"

(* Top-k most frequent values across the round's deliveries: the
   concrete join keys a skewed round hammers. *)
let heavy_keys ~k received =
  let counts : (Value.t, int ref) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun inst ->
      Instance.iter
        (fun f ->
          Array.iter
            (fun v ->
              match Hashtbl.find_opt counts v with
              | Some r -> incr r
              | None -> Hashtbl.add counts v (ref 1))
            (Fact.args f))
        inst)
    received;
  let all = Hashtbl.fold (fun v r acc -> (v, !r) :: acc) counts [] in
  let sorted =
    List.sort
      (fun (v1, c1) (v2, c2) ->
        match compare c2 c1 with 0 -> Value.compare v1 v2 | c -> c)
      all
  in
  List.filteri (fun i _ -> i < k) sorted

(* Per-round, per-server delivery events plus round-level aggregates:
   the fact-granular record behind the §3 load claims — who shipped
   what to whom, and which keys made a server heavy. *)
let emit_round_trace t ~round_no ~sent ~shipped ~received ~max_received
    ~total_received =
  for i = 0 to t.p - 1 do
    let recv = Instance.cardinal received.(i) in
    Trace.observe load_hist recv;
    Trace.instant ~cat:"mpc"
      ~args:
        [
          ("round", Trace.Int round_no);
          ("server", Trace.Int i);
          ("sent", Trace.Int sent.(i));
          ("shipped", Trace.Int shipped.(i));
          ("received", Trace.Int recv);
        ]
      "mpc.server"
  done;
  let m = t.initial_total in
  Trace.sample ~cat:"mpc" "mpc.max_load" (float_of_int max_received);
  Trace.sample ~cat:"mpc" "mpc.total_received" (float_of_int total_received);
  if m > 0 then begin
    Trace.sample ~cat:"mpc" "mpc.replication_rate"
      (float_of_int total_received /. float_of_int m);
    if max_received > 0 && t.p > 1 then
      Trace.sample ~cat:"mpc" "mpc.epsilon"
        (1.0
        -. log (float_of_int m /. float_of_int max_received)
           /. log (float_of_int t.p))
  end;
  match heavy_keys ~k:5 received with
  | [] -> ()
  | keys ->
    Trace.instant ~cat:"mpc"
      ~args:
        (("round", Trace.Int round_no)
        :: List.concat
             (List.mapi
                (fun i (v, c) ->
                  [
                    (Printf.sprintf "key%d" i, Trace.Str (Value.to_string v));
                    (Printf.sprintf "count%d" i, Trace.Int c);
                  ])
                keys))
      "mpc.heavy_keys"

(* One-pass sketch statistics over the round's deliveries: Count-Min
   degree estimates and SpaceSaving heavy hitters over the interned id
   of every join-key value, plus per-relation delivery counts and a
   reservoir of sampled keys. Runs on the coordinating thread after the
   merge (deterministic iteration order, so identical on both
   backends), reads only what the round produced, and is gated on
   {!Sketch.is_enabled} — one atomic load when off. The resulting
   {!Sketch.report} is what the future online re-planner (ROADMAP
   "adaptive skew handling") consumes; today it feeds the metrics
   scrape and [lamp top]. *)
let sketch_round t ~round_no ~received ~max_received ~total_received =
  let cm = Sketch.Cm.create ~epsilon:0.005 ~delta:0.01 () in
  let topk = Sketch.Topk.create ~capacity:64 () in
  let sample = Sketch.Reservoir.create ~capacity:256 () in
  let rels : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun inst ->
      Instance.iter
        (fun f ->
          (match Hashtbl.find_opt rels (Fact.rel f) with
          | Some r -> incr r
          | None -> Hashtbl.add rels (Fact.rel f) (ref 1));
          Array.iter
            (fun v ->
              let id = Intern.id v in
              Sketch.Cm.add cm id;
              Sketch.Topk.offer topk id;
              Sketch.Reservoir.offer sample id)
            (Fact.args f))
        inst)
    received;
  let m = t.initial_total in
  let threshold = Skew.default_threshold ~m ~p:t.p in
  (* Report CM estimates for the ids SpaceSaving surfaced — the
     classic pairing: SpaceSaving guarantees the heavy ids are present,
     CM bounds the counts (truth <= estimate <= truth + eps*total). *)
  let top =
    List.map
      (fun (id, _ss_count, _err) ->
        (Value.to_string (Intern.value id), Sketch.Cm.estimate cm id))
      (Sketch.Topk.top topk 5)
  in
  let est_top = List.fold_left (fun acc (_, c) -> max acc c) 0 top in
  let per_server =
    if t.p = 0 then 0 else (total_received + t.p - 1) / t.p
  in
  Sketch.record
    {
      Sketch.label = Sketch.context ();
      round = round_no;
      p = t.p;
      m;
      threshold;
      top;
      rels =
        Hashtbl.fold (fun rel r acc -> (rel, !r) :: acc) rels []
        |> List.sort compare;
      est_max_load = max per_server est_top;
      max_received;
      total_received;
      error_bound = Sketch.Cm.error_bound cm;
    }

(* ------------------------------------------------------------------ *)

let bad_destination ~p ~src ~dst fact =
  Invalid_argument
    (Fmt.str
       "Cluster.run_round: server %d sent %a to destination %d, out of range \
        for p = %d"
       src Fact.pp fact dst p)

(* One round = three executor phases, each deterministic per index:

   1. communicate — one task per source server; messages land in the
      executing worker's private outbox (one bucket per destination),
      so no lock is shared across sources. Destination ranges are
      validated here, per source, and the error is deferred so the
      offending source reported is always the smallest one, whatever
      worker raced ahead.
   2. merge — one task per destination server; bucket w of every
      worker outbox is appended into the destination's inbox instance.
      Instances are persistent sets, so inbox contents — and with them
      [Stats.t] — are independent of which worker handled which source.
   3. compute — one task per server over its merged inbox.

   The sequential backend runs the same three phases inline, hence
   bit-identical statistics between backends. Tracing, when on, only
   reads what the phases produced — the invariant is that a traced run
   and an untraced one yield bit-identical [Stats.t] and locals. *)
let run_round_clean t round =
  let tracing = Trace.is_enabled () in
  let metering = Metrics.is_enabled () in
  let round_no = List.length t.round_stats + 1 in
  let before = Executor.counters t.executor in
  let t0 = if metering then Metrics.now () else 0.0 in
  let nw = Executor.workers t.executor in
  let outboxes =
    Array.init nw (fun _ -> Array.make t.p ([] : Fact.t list))
  in
  let bad_dest = Array.make t.p None in
  let sent = if tracing then Array.make t.p 0 else [||] in
  Trace.span ~cat:"mpc"
    ~args:[ ("round", Trace.Int round_no); ("p", Trace.Int t.p) ]
    "mpc.communicate" (fun () ->
      Executor.parallel_for t.executor ~n:t.p (fun ~worker src ->
          let buckets = outboxes.(worker) in
          let msgs = round.communicate src t.locals.(src) in
          if tracing then sent.(src) <- List.length msgs;
          List.iter
            (fun (dst, fact) ->
              if dst < 0 || dst >= t.p then begin
                if bad_dest.(src) = None then bad_dest.(src) <- Some (dst, fact)
              end
              else buckets.(dst) <- fact :: buckets.(dst))
            msgs));
  Array.iteri
    (fun src bad ->
      match bad with
      | Some (dst, fact) -> raise (bad_destination ~p:t.p ~src ~dst fact)
      | None -> ())
    bad_dest;
  let received =
    Trace.span ~cat:"mpc"
      ~args:[ ("round", Trace.Int round_no) ]
      "mpc.merge" (fun () ->
        Executor.map_array t.executor ~n:t.p (fun dst ->
            let facts = ref [] in
            for w = nw - 1 downto 0 do
              facts := List.rev_append outboxes.(w).(dst) !facts
            done;
            Instance.of_facts !facts))
  in
  let max_received =
    Array.fold_left (fun acc i -> max acc (Instance.cardinal i)) 0 received
  in
  let total_received =
    Array.fold_left (fun acc i -> acc + Instance.cardinal i) 0 received
  in
  t.round_stats <-
    { Stats.max_received; total_received } :: t.round_stats;
  if Sketch.is_enabled () then
    sketch_round t ~round_no ~received ~max_received ~total_received;
  if tracing then begin
    (* Messages shipped to each destination, duplicates included —
       [received] counts distinct facts after the inbox set union. *)
    let shipped = Array.make t.p 0 in
    Array.iter
      (fun buckets ->
        Array.iteri
          (fun dst msgs -> shipped.(dst) <- shipped.(dst) + List.length msgs)
          buckets)
      outboxes;
    emit_round_trace t ~round_no ~sent ~shipped ~received ~max_received
      ~total_received
  end;
  t.locals <-
    Trace.span ~cat:"mpc"
      ~args:[ ("round", Trace.Int round_no) ]
      "mpc.compute" (fun () ->
        Executor.map_array t.executor ~n:t.p (fun i ->
            round.compute i ~received:received.(i) ~previous:t.locals.(i)));
  if metering then begin
    let after = Executor.counters t.executor in
    Metrics.record ~t0
      {
        Metrics.label = Fmt.str "round %d/p=%d" round_no t.p;
        wall_s = Metrics.now () -. t0;
        tasks = after.Executor.tasks - before.Executor.tasks;
        steals = after.Executor.steals - before.Executor.steals;
      }
  end

(* ------------------------------------------------------------------ *)
(* The faulty round. Same three phases, but the plan may crash-stop
   servers for the round, drop/duplicate/delay/reorder messages, stall
   tasks and make them transiently fail. Recovery restores the clean
   round's outcome within the same round:

   - [checkpoint] snapshots every server's local at the round start
     (instances are persistent, so a shallow array copy suffices) —
     the durable state a replacement server restarts from.
   - A crashed server sends nothing in the main wave; the recovery wave
     replays its communicate phase from the checkpoint. Its inbox is
     redelivered to the replacement, and its compute runs from the
     checkpointed previous state.
   - Dropped and delayed messages are retransmitted in the recovery
     wave; duplicated copies are absorbed by the merge's set union.
   - Transient task faults raise {!Plan.Transient} at the top of the
     task body (before any mutation) and are absorbed by
     {!Executor.with_retry}; plans inject fewer failures than the
     retry budget, so tasks always eventually succeed.

   Every clean-run message therefore reaches the final merged inbox at
   least once and nothing else does, so [received] — and with it
   [Stats.rounds], the computed locals and the final output — is
   bit-identical to the fault-free run. All repair traffic is accounted
   separately in [Stats.recoveries]. Fault decisions are pure functions
   of (seed, coordinates), so the pool backend draws exactly the same
   faults as the sequential one. *)
let run_round_faulty t plan round =
  let tracing = Trace.is_enabled () in
  let metering = Metrics.is_enabled () in
  let round_no = List.length t.round_stats + 1 in
  let before = Executor.counters t.executor in
  let t0 = if metering then Metrics.now () else 0.0 in
  let nw = Executor.workers t.executor in
  let checkpoint = Array.copy t.locals in
  let crashed =
    Array.init t.p (fun s -> Plan.crashes plan ~round:round_no ~server:s)
  in
  let n_crashed =
    Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 crashed
  in
  if tracing then
    Array.iteri
      (fun s c ->
        if c then
          Trace.instant ~cat:"fault"
            ~args:[ ("round", Trace.Int round_no); ("server", Trace.Int s) ]
            "fault.crash")
      crashed;
  let outboxes =
    Array.init nw (fun _ -> Array.make t.p ([] : Fact.t list))
  in
  let bad_dest = Array.make t.p None in
  (* Per-source message casualties of the main wave, repaired below.
     Indexed by source, so concurrent communicate tasks never share a
     slot. *)
  let lost = Array.make t.p ([] : (int * Fact.t) list) in
  let dup_shipped = Array.make t.p 0 in
  let sent = if tracing then Array.make t.p 0 else [||] in
  let budget = Plan.speculation_budget plan in
  let retry ~phase ~task body =
    Executor.with_retry ~max_attempts:Plan.max_attempts
      ~retryable:Plan.is_transient (fun ~attempt ->
        Plan.inject plan ~round:round_no ~phase ~task ~attempt;
        let stall = Plan.straggle_delay plan ~round:round_no ~phase ~task in
        if stall > 0.0 then begin
          if tracing then
            Trace.sample ~cat:"fault" "fault.straggle_delay_ms"
              (stall *. 1000.0);
          if budget > 0.0 then begin
            (* Straggler mitigation: wait at most the budget, then run
               a backup copy of the (pure) task body. *)
            let tie =
              Plan.speculation_tie plan ~round:round_no ~phase ~task
            in
            let s =
              Executor.speculate ~deadline:budget ~stall ~tie (fun ~cancel:_ ->
                  body ())
            in
            (match s.Executor.winner with
            | `Backup ->
              if tracing then
                Trace.instant ~cat:"fault"
                  ~args:
                    [
                      ("round", Trace.Int round_no);
                      ("phase", Trace.Str (Plan.phase_name phase));
                      ("task", Trace.Int task);
                      ("saved_ms", Trace.Float (s.Executor.saved *. 1000.0));
                    ]
                  "fault.speculate"
            | `Primary -> ());
            s.Executor.value
          end
          else begin
            Unix.sleepf stall;
            body ()
          end
        end
        else body ())
  in
  Trace.span ~cat:"mpc"
    ~args:[ ("round", Trace.Int round_no); ("p", Trace.Int t.p) ]
    "mpc.communicate" (fun () ->
      Executor.parallel_for t.executor ~n:t.p (fun ~worker src ->
          if not crashed.(src) then
            retry ~phase:Plan.Communicate ~task:src (fun () ->
                let buckets = outboxes.(worker) in
                let msgs =
                  Plan.permute plan ~round:round_no ~lane:src
                    (round.communicate src t.locals.(src))
                in
                if tracing then sent.(src) <- List.length msgs;
                let casualties = ref [] in
                let dups = ref 0 in
                List.iteri
                  (fun index (dst, fact) ->
                    if dst < 0 || dst >= t.p then begin
                      if bad_dest.(src) = None then
                        bad_dest.(src) <- Some (dst, fact)
                    end
                    else
                      match Plan.fate plan ~round:round_no ~src ~index with
                      | Plan.Deliver -> buckets.(dst) <- fact :: buckets.(dst)
                      | Plan.Duplicate ->
                        buckets.(dst) <- fact :: fact :: buckets.(dst);
                        incr dups
                      | Plan.Drop | Plan.Delay ->
                        casualties := (dst, fact) :: !casualties)
                  msgs;
                lost.(src) <- !casualties;
                dup_shipped.(src) <- !dups)));
  Array.iteri
    (fun src bad ->
      match bad with
      | Some (dst, fact) -> raise (bad_destination ~p:t.p ~src ~dst fact)
      | None -> ())
    bad_dest;
  (* Recovery wave, part 1: before the merge barrier completes, crashed
     servers' sends are replayed from their checkpoints and the main
     wave's dropped/delayed messages are retransmitted. Runs on the
     coordinating domain — repair is rare and determinism is free. *)
  let recovery_inbox = Array.make t.p ([] : Fact.t list) in
  let replayed = ref 0 in
  let retransmitted = ref 0 in
  Array.iteri
    (fun src is_crashed ->
      if is_crashed then begin
        let msgs = round.communicate src checkpoint.(src) in
        if tracing then sent.(src) <- List.length msgs;
        List.iter
          (fun (dst, fact) ->
            if dst < 0 || dst >= t.p then
              raise (bad_destination ~p:t.p ~src ~dst fact)
            else begin
              recovery_inbox.(dst) <- fact :: recovery_inbox.(dst);
              incr replayed
            end)
          msgs
      end)
    crashed;
  Array.iter
    (List.iter (fun (dst, fact) ->
         recovery_inbox.(dst) <- fact :: recovery_inbox.(dst);
         incr retransmitted))
    lost;
  let received =
    Trace.span ~cat:"mpc"
      ~args:[ ("round", Trace.Int round_no) ]
      "mpc.merge" (fun () ->
        Executor.map_array t.executor ~n:t.p (fun dst ->
            retry ~phase:Plan.Merge ~task:dst (fun () ->
                let facts = ref recovery_inbox.(dst) in
                for w = nw - 1 downto 0 do
                  facts := List.rev_append outboxes.(w).(dst) !facts
                done;
                Instance.of_facts !facts)))
  in
  (* Recovery wave, part 2: a crashed destination lost its inbox with
     it; the merged inbox is redelivered to the replacement server. *)
  Array.iteri
    (fun dst c -> if c then replayed := !replayed + Instance.cardinal received.(dst))
    crashed;
  let max_received =
    Array.fold_left (fun acc i -> max acc (Instance.cardinal i)) 0 received
  in
  let total_received =
    Array.fold_left (fun acc i -> acc + Instance.cardinal i) 0 received
  in
  t.round_stats <-
    { Stats.max_received; total_received } :: t.round_stats;
  if Sketch.is_enabled () then
    sketch_round t ~round_no ~received ~max_received ~total_received;
  let retries = ref 0 in
  (* Like retries, speculations are counted analytically — both are
     pure functions of (plan, round, phase, task), and the compute
     phase (which may also speculate) has not run yet. A task is
     outrun by its backup iff its stall reaches the budget (ties go by
     the seeded draw), exactly the decision [retry] makes. *)
  let speculations = ref 0 in
  let speculates phase task =
    if budget <= 0.0 then false
    else begin
      let stall = Plan.straggle_delay plan ~round:round_no ~phase ~task in
      stall > 0.0
      && (stall > budget
         || (stall = budget
            && Plan.speculation_tie plan ~round:round_no ~phase ~task
               = `Backup))
    end
  in
  for s = 0 to t.p - 1 do
    let failures phase =
      Plan.transient_failures plan ~round:round_no ~phase ~task:s
    in
    if not crashed.(s) then begin
      retries := !retries + failures Plan.Communicate;
      if speculates Plan.Communicate s then incr speculations
    end;
    retries := !retries + failures Plan.Merge + failures Plan.Compute;
    if speculates Plan.Merge s then incr speculations;
    if speculates Plan.Compute s then incr speculations
  done;
  let duplicates = Array.fold_left ( + ) 0 dup_shipped in
  let speculations = !speculations in
  if
    n_crashed > 0 || !replayed > 0 || !retransmitted > 0 || duplicates > 0
    || !retries > 0 || speculations > 0
  then begin
    t.recoveries <-
      {
        Stats.round = round_no;
        crashed = n_crashed;
        replayed = !replayed;
        retransmitted = !retransmitted;
        duplicates;
        retries = !retries;
        speculated = speculations;
      }
      :: t.recoveries;
    Trace.instant ~cat:"fault"
      ~args:
        [
          ("round", Trace.Int round_no);
          ("crashed", Trace.Int n_crashed);
          ("replayed", Trace.Int !replayed);
          ("retransmitted", Trace.Int !retransmitted);
          ("duplicates", Trace.Int duplicates);
          ("retries", Trace.Int !retries);
          ("speculated", Trace.Int speculations);
        ]
      "mpc.recovery"
  end;
  if tracing then begin
    let shipped = Array.make t.p 0 in
    Array.iter
      (fun buckets ->
        Array.iteri
          (fun dst msgs -> shipped.(dst) <- shipped.(dst) + List.length msgs)
          buckets)
      outboxes;
    Array.iteri
      (fun dst msgs -> shipped.(dst) <- shipped.(dst) + List.length msgs)
      recovery_inbox;
    emit_round_trace t ~round_no ~sent ~shipped ~received ~max_received
      ~total_received
  end;
  t.locals <-
    Trace.span ~cat:"mpc"
      ~args:[ ("round", Trace.Int round_no) ]
      "mpc.compute" (fun () ->
        Executor.map_array t.executor ~n:t.p (fun i ->
            retry ~phase:Plan.Compute ~task:i (fun () ->
                (* A crashed server's in-memory state died with it; the
                   replacement restarts from the checkpoint (equal to
                   the round-start local by construction). *)
                let previous =
                  if crashed.(i) then checkpoint.(i) else t.locals.(i)
                in
                round.compute i ~received:received.(i) ~previous)));
  if metering then begin
    let after = Executor.counters t.executor in
    Metrics.record ~t0
      {
        Metrics.label = Fmt.str "round %d/p=%d (faulty)" round_no t.p;
        wall_s = Metrics.now () -. t0;
        tasks = after.Executor.tasks - before.Executor.tasks;
        steals = after.Executor.steals - before.Executor.steals;
      }
  end

(* Fault injection off costs nothing: the clean path above is exactly
   the pre-faults code. *)
let run_round t round =
  if Plan.is_none t.faults then run_round_clean t round
  else run_round_faulty t t.faults round

let stats t =
  {
    Stats.p = t.p;
    initial_max = t.initial_max;
    rounds = List.rev t.round_stats;
    recoveries = List.rev t.recoveries;
  }

(* ------------------------------------------------------------------ *)
(* Job-level checkpointing: the whole cluster — topology, per-server
   locals and the statistics accumulated so far — serializes through
   the Jobs codec, so a resumed run stitches its Stats.t onto the
   checkpointed prefix and the final statistics are indistinguishable
   from an uninterrupted run's. *)

module Codec = Lamp_jobs.Codec

let snapshot t =
  let w = Codec.writer () in
  Codec.w_int w t.p;
  Codec.w_int w t.initial_max;
  Codec.w_int w t.initial_total;
  Codec.w_array w Codec.w_instance t.locals;
  Codec.w_list w Stats.w_round_stats t.round_stats;
  Codec.w_list w Stats.w_recovery t.recoveries;
  Codec.contents w

let restore ?(executor = Executor.sequential) ?(faults = Plan.none) raw =
  let r = Codec.reader raw in
  let p = Codec.r_int r in
  check_p p;
  let initial_max = Codec.r_int r in
  let initial_total = Codec.r_int r in
  let locals = Codec.r_array r Codec.r_instance in
  if Array.length locals <> p then
    raise (Codec.Corrupt "Cluster.restore: locals/p mismatch");
  let round_stats = Codec.r_list r Stats.r_round_stats in
  let recoveries = Codec.r_list r Stats.r_recovery in
  Codec.r_end r;
  {
    p;
    executor;
    faults;
    locals;
    round_stats;
    recoveries;
    initial_max;
    initial_total;
  }

let add_recovery t recovery = t.recoveries <- recovery :: t.recoveries

(* Survivor rebalancing after a permanent crash-stop: the dead
   server's checkpointed local is rehashed (by Fact.hash, the policy
   remapping) onto the p−1 survivors; servers above it shift down one
   slot. Every fact shipped is charged to Stats.recoveries as replay
   traffic. The caller is responsible for only doing this to
   computations whose remaining rounds are correct under the new
   topology (they rehash from scratch each round — coordination-free
   in the CALM sense); cross-round rendezvous algorithms must restart
   instead. *)
let shrink t ~round ~dead =
  if t.p <= 1 then invalid_arg "Cluster.shrink: cannot shrink below 1 server";
  if dead < 0 || dead >= t.p then
    invalid_arg
      (Fmt.str "Cluster.shrink: dead server %d out of range for p = %d" dead
         t.p);
  let p' = t.p - 1 in
  let survivors =
    Array.init p' (fun i -> if i < dead then t.locals.(i) else t.locals.(i + 1))
  in
  let orphans = Array.make p' [] in
  Instance.iter
    (fun f ->
      let d = Fact.hash f mod p' in
      orphans.(d) <- f :: orphans.(d))
    t.locals.(dead);
  let shipped = Instance.cardinal t.locals.(dead) in
  Array.iteri
    (fun i fs ->
      if fs <> [] then
        survivors.(i) <- Instance.union survivors.(i) (Instance.of_facts fs))
    orphans;
  {
    t with
    p = p';
    locals = survivors;
    recoveries =
      {
        Stats.round;
        crashed = 1;
        replayed = shipped;
        retransmitted = 0;
        duplicates = 0;
        retries = 0;
        speculated = 0;
      }
      :: t.recoveries;
  }

(* Drive a job script: inline (zero cost) without a supervisor,
   checkpointed under it. The supervisor's fingerprint is derived here
   from the algorithm name and the fault plan, so a resume under a
   different plan (different seed, different rates) is rejected
   instead of silently mixing incompatible runs; the plan's kill and
   perma entries are merged into the control block. *)
let supervise ?job ~name ~faults script =
  let module Supervisor = Lamp_jobs.Supervisor in
  match job with
  | None -> Supervisor.run_inline script
  | Some (ctl : Supervisor.t) ->
    ctl.Supervisor.fingerprint <- Fmt.str "%s@%a" name Plan.pp faults;
    (match (Plan.kill_after faults, ctl.Supervisor.kill_after_round) with
    | Some k, None -> ctl.Supervisor.kill_after_round <- Some k
    | _ -> ());
    Supervisor.run ctl
      ~perma:(fun ~round -> Plan.perma_crash faults ~round)
      script

(* Common communication phases. *)

let route_by f = fun _src local ->
  Instance.fold
    (fun fact acc ->
      List.fold_left (fun acc dst -> (dst, fact) :: acc) acc (f fact))
    local []

(* Common computation phases. *)

let keep_received = fun _ ~received ~previous:_ -> received

let eval_query ?strategy q =
 fun _ ~received ~previous:_ -> Lamp_cq.Eval.eval ?strategy q received
