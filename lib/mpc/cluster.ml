open Lamp_relational
module Executor = Lamp_runtime.Executor
module Metrics = Lamp_runtime.Metrics

type t = {
  p : int;
  executor : Executor.t;
  mutable locals : Instance.t array;
  mutable round_stats : Stats.round_stats list;
  initial_max : int;
}

type round = {
  communicate : int -> Instance.t -> (int * Fact.t) list;
  compute : int -> received:Instance.t -> previous:Instance.t -> Instance.t;
}

let check_p p = if p < 1 then invalid_arg "Cluster: p must be >= 1"

let create_with ?(executor = Executor.sequential) locals =
  check_p (Array.length locals);
  let initial_max =
    Array.fold_left (fun acc i -> max acc (Instance.cardinal i)) 0 locals
  in
  {
    p = Array.length locals;
    executor;
    locals = Array.copy locals;
    round_stats = [];
    initial_max;
  }

(* Round-robin partitioning: every server receives ⌈m/p⌉ or ⌊m/p⌋ facts,
   the model's "1/p-th of the data" assumption. *)
let create ?executor ~p instance =
  check_p p;
  let locals = Array.make p Instance.empty in
  List.iteri
    (fun k f -> locals.(k mod p) <- Instance.add f locals.(k mod p))
    (Instance.facts instance);
  create_with ?executor locals

let p t = t.p
let executor t = t.executor
let locals t = Array.copy t.locals
let local t i = t.locals.(i)

let union_all t =
  Array.fold_left Instance.union Instance.empty t.locals

(* One round = three executor phases, each deterministic per index:

   1. communicate — one task per source server; messages land in the
      executing worker's private outbox (one bucket per destination),
      so no lock is shared across sources. Destination ranges are
      validated here, per source, and the error is deferred so the
      offending source reported is always the smallest one, whatever
      worker raced ahead.
   2. merge — one task per destination server; bucket w of every
      worker outbox is appended into the destination's inbox instance.
      Instances are persistent sets, so inbox contents — and with them
      [Stats.t] — are independent of which worker handled which source.
   3. compute — one task per server over its merged inbox.

   The sequential backend runs the same three phases inline, hence
   bit-identical statistics between backends. *)
let run_round t round =
  let before = Executor.counters t.executor in
  let t0 = if Metrics.is_enabled () then Metrics.now () else 0.0 in
  let nw = Executor.workers t.executor in
  let outboxes =
    Array.init nw (fun _ -> Array.make t.p ([] : Fact.t list))
  in
  let bad_dest = Array.make t.p None in
  Executor.parallel_for t.executor ~n:t.p (fun ~worker src ->
      let buckets = outboxes.(worker) in
      List.iter
        (fun (dst, fact) ->
          if dst < 0 || dst >= t.p then begin
            if bad_dest.(src) = None then bad_dest.(src) <- Some dst
          end
          else buckets.(dst) <- fact :: buckets.(dst))
        (round.communicate src t.locals.(src)));
  Array.iteri
    (fun src bad ->
      match bad with
      | Some dst ->
        invalid_arg
          (Fmt.str
             "Cluster.run_round: server %d sent a message to destination %d, \
              out of range for p = %d"
             src dst t.p)
      | None -> ())
    bad_dest;
  let received =
    Executor.map_array t.executor ~n:t.p (fun dst ->
        let facts = ref [] in
        for w = nw - 1 downto 0 do
          facts := List.rev_append outboxes.(w).(dst) !facts
        done;
        Instance.of_facts !facts)
  in
  let max_received =
    Array.fold_left (fun acc i -> max acc (Instance.cardinal i)) 0 received
  in
  let total_received =
    Array.fold_left (fun acc i -> acc + Instance.cardinal i) 0 received
  in
  t.round_stats <-
    { Stats.max_received; total_received } :: t.round_stats;
  t.locals <-
    Executor.map_array t.executor ~n:t.p (fun i ->
        round.compute i ~received:received.(i) ~previous:t.locals.(i));
  if Metrics.is_enabled () then begin
    let after = Executor.counters t.executor in
    Metrics.record
      {
        Metrics.label = Fmt.str "round %d/p=%d" (List.length t.round_stats) t.p;
        wall_s = Metrics.now () -. t0;
        tasks = after.Executor.tasks - before.Executor.tasks;
        steals = after.Executor.steals - before.Executor.steals;
      }
  end

let stats t =
  {
    Stats.p = t.p;
    initial_max = t.initial_max;
    rounds = List.rev t.round_stats;
  }

(* Common communication phases. *)

let route_by f = fun _src local ->
  Instance.fold
    (fun fact acc ->
      List.fold_left (fun acc dst -> (dst, fact) :: acc) acc (f fact))
    local []

(* Common computation phases. *)

let keep_received = fun _ ~received ~previous:_ -> received

let eval_query q = fun _ ~received ~previous:_ -> Lamp_cq.Eval.eval q received
