(** Yannakakis' algorithm for acyclic CQs and its MPC version GYM
    (Section 3.2 of the paper).

    The sequential algorithm runs a full reducer (bottom-up and top-down
    semi-join passes over a join tree) eliminating all dangling tuples,
    then joins bottom-up; after reduction no intermediate join result
    exceeds what is needed for the final output. GYM executes the same
    passes as MPC rounds — semi-joins of the same tree level share a
    round — so the round count grows with the tree depth while the
    per-round load stays near m/p. *)

open Lamp_relational

exception Cyclic

val eval_acyclic : Lamp_cq.Ast.t -> Instance.t -> Instance.t
(** Sequential Yannakakis. Agrees with [Eval.eval] on every acyclic
    positive CQ.
    @raise Cyclic when the query is not acyclic.
    @raise Invalid_argument on non-positive queries. *)

val reduction_report :
  Lamp_cq.Ast.t -> Instance.t -> (Lamp_cq.Ast.atom * int * int) list
(** Per-atom relation sizes before and after the full reducer — the
    dangling-tuple elimination the algorithm is named for.
    @raise Cyclic when the query is not acyclic. *)

val gym :
  ?seed:int ->
  ?forest:Lamp_cq.Hypergraph.join_tree list ->
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  ?job:Lamp_jobs.Supervisor.t ->
  p:int ->
  Lamp_cq.Ast.t ->
  Instance.t ->
  Instance.t * Stats.t
(** GYM: the reducer and join passes executed as repartition rounds on
    [p] servers, with per-round load accounting. An explicit join forest
    overrides the GYO-constructed one — the shape (in particular depth)
    of the tree is GYM's round/communication trade-off knob.

    GYM's data path runs on the coordinator (only loads are simulated
    per server), so a fault plan cannot perturb its output; crashes,
    transient faults and straggler speculation are accounted
    analytically: a server that crashes during a round has the facts
    repartitioned to it that round re-shipped to its replacement,
    recorded in [Stats.recoveries].

    With [job], each round (a semi-join level or a join edge) is one
    supervised, checkpointed step; a permanent crash-stop shrinks the
    server count p→p−1 analytically and continues — every repartition
    rehashes from scratch, so no cross-round rendezvous breaks.
    @raise Cyclic when the query is not acyclic and no forest is
    given. *)

(** {1 Step-indexed GYM for job composition} *)

type gym_job = {
  nops : int;  (** Rounds in the plan: one {!exec} step each. *)
  exec : int -> unit;  (** Run round [k] (0-indexed). *)
  write : Lamp_jobs.Codec.w -> unit;  (** Serialize the whole job state. *)
  read : Lamp_jobs.Codec.r -> unit;  (** Restore what {!write} captured. *)
  finish : unit -> Instance.t * Stats.t;
      (** Final cross-tree join, result projection and fault
          accounting; callable once all [nops] steps ran (or were
          restored as complete). *)
  shrink : round:int -> dead:int -> unit;
      (** Analytic survivor rebalancing: charge the dead server's
          resident share as replay traffic and drop p by one. *)
}
(** GYM decomposed into checkpointable single-round steps, so a
    composite algorithm (e.g. {!Gym_ghd}) can interleave its own
    supervised steps with GYM's. *)

val gym_job :
  ?seed:int ->
  ?forest:Lamp_cq.Hypergraph.join_tree list ->
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  p:int ->
  Lamp_cq.Ast.t ->
  Instance.t ->
  gym_job
(** Build the step-indexed form; {!gym} is [gym_job] driven through
    {!Cluster.supervise}. *)
