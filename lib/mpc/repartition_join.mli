(** The repartition join of Example 3.1(1a).

    Single-round MPC join of [R(x,y)] and [S(y,z)]: both relations are
    hashed on the join attribute, then joined locally. Without skew the
    maximum load is O(m/p); a heavy hitter in the join column
    concentrates its entire degree on one server. *)

open Lamp_relational

val query : Lamp_cq.Ast.t
(** [H(x,y,z) ← R(x,y), S(y,z)]. *)

val run :
  ?seed:int ->
  ?materialize:bool ->
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  p:int ->
  Instance.t ->
  Instance.t * Stats.t
(** Runs the join on [p] servers; returns the join result and the load
    statistics. [executor] selects the execution backend; the
    statistics do not depend on it. *)
