(** Synthetic MPC workloads, parameterized the way the paper's load
    bounds are: input size m, skew presence, and domain size.

    These stand in for the cluster workloads of the cited experimental
    work; see DESIGN.md for the substitution argument. *)

open Lamp_relational

val rename_relation :
  from_rel:string -> to_rel:string -> Instance.t -> Instance.t

val join_skew_free : m:int -> Instance.t
(** R and S of m tuples each where every domain value occurs exactly
    once — the paper's "absence of skew" assumption in Example
    3.1(1a). *)

val join_skewed : m:int -> Instance.t
(** Worst-case join skew: a single join value carries all 2m tuples. *)

val triangle_skew_free :
  rng:Random.State.t -> m:int -> domain:int -> Instance.t
(** R, S, T uniform over a domain sized to keep every degree near m /
    domain — skew-free in the sense of the HyperCube analysis when the
    domain is large. *)

val triangle_from_graph : Instance.t -> Instance.t
(** Copies an edge relation E into R, S and T, so the triangle query
    over three relations counts the directed triangles of the graph. *)

val triangle_y_skew :
  rng:Random.State.t -> m:int -> domain:int -> heavy_fraction:float ->
  Instance.t
(** Triangle input with a heavy hitter in the join attribute y: a
    [heavy_fraction] of R's y-values and S's y-values collapse onto one
    hub value, while x and z stay uniform — the scenario of the paper's
    Section 3.2 skew discussion. *)

val graph_pairs :
  rng:Random.State.t -> m:int -> domain:int -> (int * int) list
(** [m] uniform directed edges over [0..domain-1] (with replacement) —
    the seeded edge list the E16 bench and the engine property tests
    share. *)

val zipf_pairs :
  rng:Random.State.t -> m:int -> domain:int -> s:float -> (int * int) list
(** [m] edges with both endpoints Zipf(s)-distributed over
    [1..domain]; [s] at 1.0 and beyond concentrates the mass on a few
    hub nodes, producing the heavy hitters the skew-resilient plans
    (and the worst-case-optimal join's advantage) are about. *)

val relations_from_pairs :
  rels:string list -> (int * int) list -> Instance.t
(** Copies one edge list into every named binary relation, so a cyclic
    query over distinct relation names (triangle over R,S,T; 4-cycle
    over R,S,T,U; {!Lamp_cq.Examples.q_clique}) counts the pattern
    occurrences of a single graph while staying self-join free. *)

val cycle_from_pairs : rels:string list -> (int * int) list -> Instance.t
(** Alias of {!relations_from_pairs}, named for the cycle queries. *)

val clique_from_pairs : k:int -> (int * int) list -> Instance.t
(** {!relations_from_pairs} over {!Lamp_cq.Examples.clique_rels}. *)

val acyclic_chain :
  rng:Random.State.t -> m:int -> domain:int -> rels:string list -> Instance.t
(** One uniform binary relation per name, for chain queries
    [H(...) ← R1(x0,x1), R2(x1,x2), …]. *)
