type round_stats = {
  max_received : int;
  total_received : int;
}

type recovery = {
  round : int;
  crashed : int;
  replayed : int;
  retransmitted : int;
  duplicates : int;
  retries : int;
  speculated : int;
}

type t = {
  p : int;
  initial_max : int;
  rounds : round_stats list;
  recoveries : recovery list;
}

let rounds t = List.length t.rounds

let recovery_rounds t = List.length t.recoveries

let recovery_load t =
  List.fold_left
    (fun acc r -> acc + r.replayed + r.retransmitted + r.duplicates)
    0 t.recoveries

let crashes t = List.fold_left (fun acc r -> acc + r.crashed) 0 t.recoveries
let retries t = List.fold_left (fun acc r -> acc + r.retries) 0 t.recoveries

let speculations t =
  List.fold_left (fun acc r -> acc + r.speculated) 0 t.recoveries

let without_recoveries t = { t with recoveries = [] }

(* Checkpoint codecs, shared by every snapshotting consumer. *)

module Codec = Lamp_jobs.Codec

let w_round_stats w r =
  Codec.w_int w r.max_received;
  Codec.w_int w r.total_received

let r_round_stats r =
  let max_received = Codec.r_int r in
  let total_received = Codec.r_int r in
  { max_received; total_received }

let w_recovery w r =
  Codec.w_int w r.round;
  Codec.w_int w r.crashed;
  Codec.w_int w r.replayed;
  Codec.w_int w r.retransmitted;
  Codec.w_int w r.duplicates;
  Codec.w_int w r.retries;
  Codec.w_int w r.speculated

let r_recovery r =
  let round = Codec.r_int r in
  let crashed = Codec.r_int r in
  let replayed = Codec.r_int r in
  let retransmitted = Codec.r_int r in
  let duplicates = Codec.r_int r in
  let retries = Codec.r_int r in
  let speculated = Codec.r_int r in
  { round; crashed; replayed; retransmitted; duplicates; retries; speculated }

let max_load t =
  List.fold_left (fun acc r -> max acc r.max_received) t.initial_max t.rounds

let total_communication t =
  List.fold_left (fun acc r -> acc + r.total_received) 0 t.rounds

let replication_rate ~m t =
  if m = 0 then 0.0 else float_of_int (total_communication t) /. float_of_int m

(* The ε of the paper's load form L = m / p^(1-ε): 0 means perfectly
   balanced, 1 means one server holds everything. *)
let epsilon ~m t =
  let load = max_load t in
  if m = 0 || load = 0 || t.p = 1 then 0.0
  else
    let ratio = float_of_int m /. float_of_int load in
    1.0 -. (log ratio /. log (float_of_int t.p))

(* The one-line and per-round forms print exactly as before on a
   fault-free run: the recovery segment appears only when a recovery
   actually happened, keeping zero-fault output byte-identical. *)
let pp ppf t =
  Fmt.pf ppf "p=%d rounds=%d max_load=%d total_comm=%d" t.p (rounds t)
    (max_load t) (total_communication t);
  if t.recoveries <> [] then begin
    Fmt.pf ppf " recovery: rounds=%d load=%d crashes=%d retries=%d"
      (recovery_rounds t) (recovery_load t) (crashes t) (retries t);
    if speculations t > 0 then Fmt.pf ppf " speculations=%d" (speculations t)
  end

(* The paper's load target L = m / p^(1-ε): what a round *should* cost
   at skew ε. The skew reports compare their estimates against it. *)
let target_load ~m ~p ~epsilon =
  if p <= 0 then 0.0
  else float_of_int m /. (float_of_int p ** (1.0 -. epsilon))

(* Render the obs-side per-round skew reports next to the stats they
   annotate. Reports are sampled statistics recorded by Obs.Sketch
   during the run; they never live inside [t] — [t] stays bit-identical
   with sketching on or off. *)
let pp_skew ppf (reports : Lamp_obs.Sketch.report list) =
  List.iter
    (fun (r : Lamp_obs.Sketch.report) ->
      Fmt.pf ppf "%a@." Lamp_obs.Sketch.pp_report r)
    reports

let pp_rounds ppf t =
  Fmt.pf ppf "initial partition: max=%d@." t.initial_max;
  List.iteri
    (fun i r ->
      Fmt.pf ppf "round %d: max_received=%d total_received=%d@." (i + 1)
        r.max_received r.total_received)
    t.rounds;
  List.iter
    (fun r ->
      Fmt.pf ppf
        "round %d recovery: crashed=%d replayed=%d retransmitted=%d \
         duplicates=%d retries=%d speculated=%d@."
        r.round r.crashed r.replayed r.retransmitted r.duplicates r.retries
        r.speculated)
    t.recoveries
