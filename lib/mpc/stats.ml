type round_stats = {
  max_received : int;
  total_received : int;
}

type t = {
  p : int;
  initial_max : int;
  rounds : round_stats list;
}

let rounds t = List.length t.rounds

let max_load t =
  List.fold_left (fun acc r -> max acc r.max_received) t.initial_max t.rounds

let total_communication t =
  List.fold_left (fun acc r -> acc + r.total_received) 0 t.rounds

let replication_rate ~m t =
  if m = 0 then 0.0 else float_of_int (total_communication t) /. float_of_int m

(* The ε of the paper's load form L = m / p^(1-ε): 0 means perfectly
   balanced, 1 means one server holds everything. *)
let epsilon ~m t =
  let load = max_load t in
  if m = 0 || load = 0 || t.p = 1 then 0.0
  else
    let ratio = float_of_int m /. float_of_int load in
    1.0 -. (log ratio /. log (float_of_int t.p))

let pp ppf t =
  Fmt.pf ppf "p=%d rounds=%d max_load=%d total_comm=%d" t.p (rounds t)
    (max_load t) (total_communication t)

let pp_rounds ppf t =
  Fmt.pf ppf "initial partition: max=%d@." t.initial_max;
  List.iteri
    (fun i r ->
      Fmt.pf ppf "round %d: max_received=%d total_received=%d@." (i + 1)
        r.max_received r.total_received)
    t.rounds
