open Lamp_relational

(* Example 3.1(1b): Ullman's drug-interaction strategy. R and S are
   split into g = ⌊√p⌋ groups *by position*, not by value: tuple number
   k of R lands in group k mod g. Every (R-group, S-group) pair is
   assigned to a distinct server, which evaluates the join on the pair.
   The load is O(m/√p) regardless of skew, because group sizes depend
   only on tuple counts. *)

let query = Lamp_cq.Examples.q1_join

let run ?(materialize = true) ?executor ?faults ~p instance =
  if p < 1 then invalid_arg "Grid_join.run: p < 1";
  Lamp_obs.Sketch.set_context "grid";
  let g = max 1 (int_of_float (sqrt (float_of_int p))) in
  let cluster = Cluster.create ?executor ?faults ~p instance in
  (* Stable per-fact group numbers: hash of the fact itself modulo g
     keeps groups balanced in expectation and independent of any value
     frequency; exact balance is achieved by numbering the facts. *)
  let number = Hashtbl.create 256 in
  List.iteri
    (fun k f -> Hashtbl.replace number f k)
    (Instance.facts instance);
  let group f = match Hashtbl.find_opt number f with
    | Some k -> k mod g
    | None -> 0
  in
  let route fact =
    match Fact.rel fact with
    | "R" ->
      let i = group fact in
      List.init g (fun j -> (i * g) + j)
    | "S" ->
      let j = group fact in
      List.init g (fun i -> (i * g) + j)
    | _ -> []
  in
  Cluster.run_round cluster
    {
      Cluster.communicate = Cluster.route_by route;
      compute =
        (if materialize then Cluster.eval_query query
         else fun _ ~received:_ ~previous:_ -> Instance.empty);
    };
  (Cluster.union_all cluster, Cluster.stats cluster)
