open Lamp_relational
open Lamp_distribution
open Lamp_cq
module Supervisor = Lamp_jobs.Supervisor

let h ~seed ~p v = Policy.hash_value ~seed ~buckets:p v

(* ------------------------------------------------------------------ *)
(* Job plumbing shared by the cluster-backed multi-round algorithms: a
   fixed (per current topology) sequence of rounds over one cluster
   held in a ref, snapshotting and restoring through
   Cluster.snapshot/restore. [rounds_for] is re-consulted at every
   step with the cluster's current p, so a rebalanced job rebuilds its
   remaining rounds for the shrunk topology. *)
let cluster_script ?executor ?faults cluster ~rounds_for ~rebalance =
  {
    Supervisor.step =
      (fun k ->
        let rounds = rounds_for ~p:(Cluster.p !cluster) in
        let n = Array.length rounds in
        if k >= n then `Done
        else begin
          Cluster.run_round !cluster rounds.(k);
          if k = n - 1 then `Done else `Continue
        end);
    snapshot = (fun () -> Cluster.snapshot !cluster);
    restore =
      (fun ~round:_ payload ->
        cluster := Cluster.restore ?executor ?faults payload);
    rebalance;
  }

(* Survivor rebalancing for algorithms whose every round rehashes from
   scratch: shrink p → p−1, rehash the dead server's local onto the
   survivors, continue from the current round. *)
let rebalance_shrink cluster ~round ~dead =
  let c = !cluster in
  if dead < 0 || dead >= Cluster.p c || Cluster.p c <= 1 then `Continue
  else begin
    cluster := Cluster.shrink c ~round ~dead;
    `Continue
  end

(* Restart policy for algorithms that rendezvous across rounds on a
   p-dependent hash (data parked at h_p(z) in round 1 is met there in
   round 2): a topology change invalidates the parked placement, so the
   job restarts from round 0 on a fresh p−1 cluster. The dead server's
   resident facts are charged as replay traffic. *)
let rebalance_restart ?executor ?faults instance cluster ~round ~dead =
  let c = !cluster in
  let cp = Cluster.p c in
  if dead < 0 || dead >= cp || cp <= 1 then `Continue
  else begin
    let shipped = Instance.cardinal (Cluster.local c dead) in
    let fresh = Cluster.create ?executor ?faults ~p:(cp - 1) instance in
    Cluster.add_recovery fresh
      {
        Stats.round;
        crashed = 1;
        replayed = shipped;
        retransmitted = 0;
        duplicates = 0;
        retries = 0;
        speculated = 0;
      };
    cluster := fresh;
    `Restart
  end

let plan_of = function Some f -> f | None -> Lamp_faults.Plan.none

(* Example 3.1(2): the triangle by a cascade of two repartition joins.
   Round 1 joins R and S on y into K; round 2 joins K with T on the
   pair (x, z). T rides along at its initial servers during round 1. *)
let cascade_triangle ?(seed = 0) ?executor ?faults ?job ~p instance =
  Lamp_obs.Sketch.set_context "cascade";
  let k_query = Parser.query "K(x,y,z) <- R(x,y), S(y,z)" in
  let finish = Parser.query "H(x,y,z) <- K(x,y,z), T(z,x)" in
  let cluster = ref (Cluster.create ?executor ?faults ~p instance) in
  let rounds_for ~p =
    let round1_route src fact =
      let args = Fact.args fact in
      match Fact.rel fact with
      | "R" -> [ h ~seed ~p args.(1) ]
      | "S" -> [ h ~seed ~p args.(0) ]
      | "T" -> [ src ]
      | _ -> []
    in
    let pair_hash args i j =
      h ~seed:(seed + 7919) ~p
        (Value.str
           (Value.to_string args.(i) ^ "\000" ^ Value.to_string args.(j)))
    in
    [|
      {
        Cluster.communicate =
          (fun src local ->
            Instance.fold
              (fun fact acc ->
                List.fold_left
                  (fun acc dst -> (dst, fact) :: acc)
                  acc (round1_route src fact))
              local []);
        compute =
          (fun _ ~received ~previous:_ ->
            Instance.union
              (Eval.eval k_query received)
              (Instance.filter (fun f -> Fact.rel f = "T") received));
      };
      {
        Cluster.communicate =
          Cluster.route_by (fun fact ->
              let args = Fact.args fact in
              match Fact.rel fact with
              | "K" -> [ pair_hash args 0 2 ]
              | "T" -> [ pair_hash args 1 0 ]
              | _ -> []);
        compute = Cluster.eval_query finish;
      };
    |]
  in
  Cluster.supervise ?job ~name:"cascade_triangle" ~faults:(plan_of faults)
    (cluster_script ?executor ?faults cluster ~rounds_for
       ~rebalance:(fun ~round ~dead -> rebalance_shrink cluster ~round ~dead));
  (Cluster.union_all !cluster, Cluster.stats !cluster)

(* Two-round triangle resilient to join-attribute skew (Section 3.2):
   tuples whose y-value is heavy are taken out of the one-round
   HyperCube (which handles the light part at load ~ m/p^(2/3)) and
   processed by a semi-join plan anchored at T, whose routing keys x and
   z are assumed light — the paper's canonical heavy-hitter scenario.

   Round 1: light part → HyperCube cells; heavy R and a copy of T → h(x);
            heavy S → h(z) where it waits for round 2.
   Round 2: partial matches K(z,x,y) = Tc(z,x) ⋈ Rh(x,y) → h(z), meeting
            the heavy S there. *)
let skew_resilient_triangle ?(seed = 0) ?threshold ?executor ?faults ?job ~p
    instance =
  Lamp_obs.Sketch.set_context "skew_resilient";
  let m_rel =
    List.fold_left
      (fun acc rel -> max acc (Tuple.Set.cardinal (Instance.tuples instance rel)))
      1 [ "R"; "S"; "T" ]
  in
  let triangle = Examples.q2_triangle in
  let k_query = Parser.query "K(z,x,y) <- Tc(z,x), Rh(x,y)" in
  let finish = Parser.query "H(x,y,z) <- K(z,x,y), Sh(y,z)" in
  let rename rel f = Fact.make rel (Fact.args f) in
  let heavy_count = ref 0 in
  (* The whole plan — threshold, heavy-hitter set, HyperCube shares,
     the parked-S rendezvous hash — depends on p, so it is rebuilt per
     topology (memoized: a restart after rebalancing replans for the
     survivor count). *)
  let plans = Hashtbl.create 2 in
  let rounds_for ~p =
    match Hashtbl.find_opt plans p with
    | Some rounds ->
      rounds
    | None ->
      (* Values above this degree would alone exceed the m/p^(2/3)
         load target of a HyperCube cell, so they are exactly the ones
         to take out of the one-round plan. *)
      let threshold =
        match threshold with
        | Some t -> t
        | None ->
          max 1
            (int_of_float
               (float_of_int m_rel /. Float.pow (float_of_int p) (2.0 /. 3.0)))
      in
      let heavy =
        Value.Set.union
          (Skew.heavy_hitters instance ~rel:"R" ~pos:1 ~threshold)
          (Skew.heavy_hitters instance ~rel:"S" ~pos:0 ~threshold)
      in
      let is_heavy_fact f =
        let args = Fact.args f in
        match Fact.rel f with
        | "R" -> Value.Set.mem args.(1) heavy
        | "S" -> Value.Set.mem args.(0) heavy
        | _ -> false
      in
      let shares, _ =
        Shares.optimize ~objective:Shares.Max_load ~p
          ~sizes:(fun a ->
            Tuple.Set.cardinal (Instance.tuples instance a.Ast.rel))
          triangle
      in
      let policy, _ =
        Policy.hypercube ~seed ~name:"light" ~query:triangle ~shares ()
      in
      let hz = h ~seed:(seed + 104729) ~p in
      let rounds =
        [|
          {
            Cluster.communicate =
              Cluster.route_by (fun fact ->
                  let args = Fact.args fact in
                  if is_heavy_fact fact then
                    match Fact.rel fact with
                    | "R" -> [ h ~seed ~p args.(0) ]
                    | "S" -> [ hz args.(1) ]
                    | _ -> []
                  else
                    let cells = Policy.responsible_nodes policy fact in
                    (* The heavy plan additionally needs T(z,x) at h(x). *)
                    if Fact.rel fact = "T" && not (Value.Set.is_empty heavy)
                    then h ~seed ~p args.(1) :: cells
                    else cells);
            compute =
              (fun _ ~received ~previous:_ ->
                (* Received heavy facts keep their original names; give
                   them their plan-local names before the local joins. *)
                let heavy_renamed =
                  Instance.fold
                    (fun f acc ->
                      if is_heavy_fact f then
                        match Fact.rel f with
                        | "R" -> Instance.add (rename "Rh" f) acc
                        | "S" -> Instance.add (rename "Sh" f) acc
                        | _ -> acc
                      else acc)
                    received Instance.empty
                in
                let t_copy =
                  Instance.fold
                    (fun f acc ->
                      if Fact.rel f = "T" then Instance.add (rename "Tc" f) acc
                      else acc)
                    received Instance.empty
                in
                let light_only =
                  Instance.filter (fun f -> not (is_heavy_fact f)) received
                in
                let k = Eval.eval k_query (Instance.union heavy_renamed t_copy) in
                Instance.union
                  (Eval.eval triangle light_only)
                  (Instance.union k
                     (Instance.filter (fun f -> Fact.rel f = "Sh") heavy_renamed)));
          };
          {
            Cluster.communicate =
              (fun src local ->
                Instance.fold
                  (fun fact acc ->
                    let args = Fact.args fact in
                    match Fact.rel fact with
                    | "H" -> (src, fact) :: acc
                    | "K" -> (hz args.(0), fact) :: acc
                    | "Sh" -> (src, fact) :: acc
                    | _ -> acc)
                  local []);
            compute =
              (fun _ ~received ~previous:_ ->
                Instance.union
                  (Instance.filter (fun f -> Fact.rel f = "H") received)
                  (Eval.eval finish received));
          };
        |]
      in
      Hashtbl.add plans p rounds;
      heavy_count := Value.Set.cardinal heavy;
      rounds
  in
  let cluster = ref (Cluster.create ?executor ?faults ~p instance) in
  Cluster.supervise ?job ~name:"skew_resilient_triangle"
    ~faults:(plan_of faults)
    (cluster_script ?executor ?faults cluster ~rounds_for
       ~rebalance:(fun ~round ~dead ->
         (* Heavy S parks at h_p(z) in round 1 and is met there by K in
            round 2 — a cross-round rendezvous that a topology change
            breaks, so a permanent crash restarts the job from round 0
            on the survivors. *)
         rebalance_restart ?executor ?faults instance cluster ~round ~dead));
  (* Reflect the topology the run actually finished under. *)
  ignore (rounds_for ~p:(Cluster.p !cluster));
  (Cluster.union_all !cluster, Cluster.stats !cluster, !heavy_count)
