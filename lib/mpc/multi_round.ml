open Lamp_relational
open Lamp_distribution
open Lamp_cq

let h ~seed ~p v = Policy.hash_value ~seed ~buckets:p v

(* Example 3.1(2): the triangle by a cascade of two repartition joins.
   Round 1 joins R and S on y into K; round 2 joins K with T on the
   pair (x, z). T rides along at its initial servers during round 1. *)
let cascade_triangle ?(seed = 0) ?executor ?faults ~p instance =
  let k_query = Parser.query "K(x,y,z) <- R(x,y), S(y,z)" in
  let finish = Parser.query "H(x,y,z) <- K(x,y,z), T(z,x)" in
  let cluster = Cluster.create ?executor ?faults ~p instance in
  let round1_route src fact =
    let args = Fact.args fact in
    match Fact.rel fact with
    | "R" -> [ h ~seed ~p args.(1) ]
    | "S" -> [ h ~seed ~p args.(0) ]
    | "T" -> [ src ]
    | _ -> []
  in
  Cluster.run_round cluster
    {
      Cluster.communicate =
        (fun src local ->
          Instance.fold
            (fun fact acc ->
              List.fold_left
                (fun acc dst -> (dst, fact) :: acc)
                acc (round1_route src fact))
            local []);
      compute =
        (fun _ ~received ~previous:_ ->
          Instance.union
            (Eval.eval k_query received)
            (Instance.filter (fun f -> Fact.rel f = "T") received));
    };
  let pair_hash args i j =
    h ~seed:(seed + 7919) ~p
      (Value.str (Value.to_string args.(i) ^ "\000" ^ Value.to_string args.(j)))
  in
  Cluster.run_round cluster
    {
      Cluster.communicate =
        Cluster.route_by (fun fact ->
            let args = Fact.args fact in
            match Fact.rel fact with
            | "K" -> [ pair_hash args 0 2 ]
            | "T" -> [ pair_hash args 1 0 ]
            | _ -> []);
      compute = Cluster.eval_query finish;
    };
  (Cluster.union_all cluster, Cluster.stats cluster)

(* Two-round triangle resilient to join-attribute skew (Section 3.2):
   tuples whose y-value is heavy are taken out of the one-round
   HyperCube (which handles the light part at load ~ m/p^(2/3)) and
   processed by a semi-join plan anchored at T, whose routing keys x and
   z are assumed light — the paper's canonical heavy-hitter scenario.

   Round 1: light part → HyperCube cells; heavy R and a copy of T → h(x);
            heavy S → h(z) where it waits for round 2.
   Round 2: partial matches K(z,x,y) = Tc(z,x) ⋈ Rh(x,y) → h(z), meeting
            the heavy S there. *)
let skew_resilient_triangle ?(seed = 0) ?threshold ?executor ?faults ~p
    instance =
  let m_rel =
    List.fold_left
      (fun acc rel -> max acc (Tuple.Set.cardinal (Instance.tuples instance rel)))
      1 [ "R"; "S"; "T" ]
  in
  (* Values above this degree would alone exceed the m/p^(2/3) load
     target of a HyperCube cell, so they are exactly the ones to take
     out of the one-round plan. *)
  let threshold =
    match threshold with
    | Some t -> t
    | None ->
      max 1
        (int_of_float
           (float_of_int m_rel /. Float.pow (float_of_int p) (2.0 /. 3.0)))
  in
  let heavy =
    Value.Set.union
      (Skew.heavy_hitters instance ~rel:"R" ~pos:1 ~threshold)
      (Skew.heavy_hitters instance ~rel:"S" ~pos:0 ~threshold)
  in
  let is_heavy_fact f =
    let args = Fact.args f in
    match Fact.rel f with
    | "R" -> Value.Set.mem args.(1) heavy
    | "S" -> Value.Set.mem args.(0) heavy
    | _ -> false
  in
  let triangle = Examples.q2_triangle in
  let shares, _ =
    Shares.optimize ~objective:Shares.Max_load ~p
      ~sizes:(fun a -> Tuple.Set.cardinal (Instance.tuples instance a.Ast.rel))
      triangle
  in
  let policy, _ = Policy.hypercube ~seed ~name:"light" ~query:triangle ~shares () in
  let k_query = Parser.query "K(z,x,y) <- Tc(z,x), Rh(x,y)" in
  let finish = Parser.query "H(x,y,z) <- K(z,x,y), Sh(y,z)" in
  let rename rel f = Fact.make rel (Fact.args f) in
  let hz = h ~seed:(seed + 104729) ~p in
  let cluster = Cluster.create ?executor ?faults ~p instance in
  Cluster.run_round cluster
    {
      Cluster.communicate =
        Cluster.route_by (fun fact ->
            let args = Fact.args fact in
            if is_heavy_fact fact then
              match Fact.rel fact with
              | "R" -> [ h ~seed ~p args.(0) ]
              | "S" -> [ hz args.(1) ]
              | _ -> []
            else
              let cells = Policy.responsible_nodes policy fact in
              (* The heavy plan additionally needs T(z,x) at h(x). *)
              if Fact.rel fact = "T" && not (Value.Set.is_empty heavy) then
                h ~seed ~p args.(1) :: cells
              else cells);
      compute =
        (fun _ ~received ~previous:_ ->
          (* Received heavy facts keep their original names; give them
             their plan-local names before the local joins. *)
          let heavy_renamed =
            Instance.fold
              (fun f acc ->
                if is_heavy_fact f then
                  match Fact.rel f with
                  | "R" -> Instance.add (rename "Rh" f) acc
                  | "S" -> Instance.add (rename "Sh" f) acc
                  | _ -> acc
                else acc)
              received Instance.empty
          in
          let t_copy =
            Instance.fold
              (fun f acc ->
                if Fact.rel f = "T" then Instance.add (rename "Tc" f) acc
                else acc)
              received Instance.empty
          in
          let light_only = Instance.filter (fun f -> not (is_heavy_fact f)) received in
          let k = Eval.eval k_query (Instance.union heavy_renamed t_copy) in
          Instance.union
            (Eval.eval triangle light_only)
            (Instance.union k
               (Instance.filter (fun f -> Fact.rel f = "Sh") heavy_renamed)));
    };
  Cluster.run_round cluster
    {
      Cluster.communicate =
        (fun src local ->
          Instance.fold
            (fun fact acc ->
              let args = Fact.args fact in
              match Fact.rel fact with
              | "H" -> (src, fact) :: acc
              | "K" -> (hz args.(0), fact) :: acc
              | "Sh" -> (src, fact) :: acc
              | _ -> acc)
            local []);
      compute =
        (fun _ ~received ~previous:_ ->
          Instance.union
            (Instance.filter (fun f -> Fact.rel f = "H") received)
            (Eval.eval finish received));
    };
  (Cluster.union_all cluster, Cluster.stats cluster, Value.Set.cardinal heavy)
