open Lamp_relational
open Lamp_cq
module Sset = Decomposition.Sset
module Codec = Lamp_jobs.Codec

(* GYM over a tree decomposition (Section 3.2 / [6]): phase 1 evaluates
   every bag's join with one round of HyperCube on its own slice of the
   cluster; phase 2 runs the distributed Yannakakis passes over the bag
   results, whose tree is acyclic by the running-intersection
   property. *)

let bag_rel i = Fmt.str "\006bag%d" i

let bag_pseudo_atom i (b : Decomposition.bag) =
  Ast.atom (bag_rel i) (List.map (fun v -> Ast.Var v) (Sset.elements b.vars))

let bag_query i (b : Decomposition.bag) =
  Ast.make ~head:(bag_pseudo_atom i b) ~body:b.Decomposition.atoms ()

let zero_round = { Stats.max_received = 0; total_received = 0 }

let zero_recovery =
  {
    Stats.round = 1;
    crashed = 0;
    replayed = 0;
    retransmitted = 0;
    duplicates = 0;
    retries = 0;
    speculated = 0;
  }

let run ?(seed = 0) ?decomposition ?executor ?(faults = Lamp_faults.Plan.none)
    ?job ~p q instance =
  if not (Ast.is_positive q) then
    invalid_arg "Gym_ghd.run: defined for positive CQs";
  let decomposition =
    match decomposition with
    | Some d -> d
    | None -> (
      match Hypergraph.gyo q with
      | Some forest -> Decomposition.of_join_forest forest
      | None -> Decomposition.min_fill q)
  in
  (match Decomposition.validate q decomposition with
  | Ok () -> ()
  | Error msg -> invalid_arg (Fmt.str "Gym_ghd.run: invalid decomposition: %s" msg));
  (* Number the bags and remember the tree shape. *)
  let module Numbered = struct
    type t = {
      id : int;
      bag : Decomposition.bag;
      kids : t list;
    }
  end in
  let counter = ref 0 in
  let rec number (t : Decomposition.t) =
    let id = !counter in
    incr counter;
    let kids = List.map number t.Decomposition.children in
    { Numbered.id; bag = t.Decomposition.bag; kids }
  in
  let numbered = List.map number decomposition in
  let nbags = !counter in
  let rec pseudo_tree { Numbered.id = i; bag; kids } =
    {
      Hypergraph.atom = bag_pseudo_atom i bag;
      vars = bag.Decomposition.vars;
      children = List.map pseudo_tree kids;
    }
  in
  let forest = List.map pseudo_tree numbered in
  let body = List.map (fun t -> t.Hypergraph.atom) (
    let rec flatten t = t :: List.concat_map flatten t.Hypergraph.children in
    List.concat_map flatten forest)
  in
  let q2 = Ast.make ~head:(Ast.head q) ~body () in
  (* Mutable job state: the server count (drops on a restart after a
     permanent crash), phase-1 results and accounting, the phase-2
     step-indexed GYM (built lazily once the bag results exist), and
     the restart records already charged. *)
  let p0 = p in
  let initial_max = (Instance.cardinal instance + p0 - 1) / p0 in
  let p = ref p in
  let phase1_done = ref false in
  let bag_results = ref (Array.make nbags Instance.empty) in
  let phase1 = ref zero_round in
  (* Bag runs all belong to phase 1 — their recovery work is merged
     into a single round-1 record. *)
  let phase1_recovery = ref zero_recovery in
  let restarts = ref [] in
  let gym = ref None in
  let get_gym () =
    match !gym with
    | Some g -> g
    | None ->
      let bag_instance =
        Array.fold_left Instance.union Instance.empty !bag_results
      in
      let g =
        Yannakakis.gym_job ~seed ~forest ?executor ~faults ~p:!p q2
          bag_instance
      in
      gym := Some g;
      g
  in
  (* Phase 1: per-bag HyperCube joins on disjoint server groups. *)
  let run_phase1 () =
    let p_bag = max 1 (!p / nbags) in
    let rec eval_bags { Numbered.id = i; bag; kids } =
      let bq = bag_query i bag in
      let shares, _ =
        Shares.optimize ~objective:Shares.Max_load ~p:p_bag
          ~sizes:(fun (a : Ast.atom) ->
            Tuple.Set.cardinal (Instance.tuples instance a.Ast.rel))
          bq
      in
      let result, stats =
        Hypercube.run_with_shares ~seed ?executor ~faults ~shares bq instance
      in
      !bag_results.(i) <- result;
      (match stats.Stats.rounds with
      | [ r ] ->
        phase1 :=
          {
            Stats.max_received = max !phase1.Stats.max_received r.Stats.max_received;
            total_received = !phase1.Stats.total_received + r.Stats.total_received;
          }
      | _ -> assert false);
      List.iter
        (fun (r : Stats.recovery) ->
          let acc = !phase1_recovery in
          phase1_recovery :=
            {
              acc with
              Stats.crashed = acc.Stats.crashed + r.Stats.crashed;
              replayed = acc.replayed + r.replayed;
              retransmitted = acc.retransmitted + r.retransmitted;
              duplicates = acc.duplicates + r.duplicates;
              retries = acc.retries + r.retries;
              speculated = acc.speculated + r.speculated;
            })
        stats.Stats.recoveries;
      List.iter eval_bags kids
    in
    List.iter eval_bags numbered;
    phase1_done := true
  in
  Cluster.supervise ?job ~name:"gym_ghd" ~faults
    {
      Lamp_jobs.Supervisor.step =
        (fun k ->
          (* Round 1 is the whole of phase 1; rounds 2.. are GYM's
             semi-join and join rounds over the bag results. *)
          if k = 0 then begin
            run_phase1 ();
            `Continue
          end
          else begin
            let g = get_gym () in
            if k - 1 >= g.Yannakakis.nops then `Done
            else begin
              g.Yannakakis.exec (k - 1);
              if k - 1 = g.Yannakakis.nops - 1 then `Done else `Continue
            end
          end);
      snapshot =
        (fun () ->
          let w = Codec.writer () in
          Codec.w_int w !p;
          Codec.w_bool w !phase1_done;
          Codec.w_list w Stats.w_recovery !restarts;
          if !phase1_done then begin
            Codec.w_array w Codec.w_instance !bag_results;
            Stats.w_round_stats w !phase1;
            Stats.w_recovery w !phase1_recovery;
            (get_gym ()).Yannakakis.write w
          end;
          Codec.contents w);
      restore =
        (fun ~round:_ payload ->
          let r = Codec.reader payload in
          p := Codec.r_int r;
          phase1_done := Codec.r_bool r;
          restarts := Codec.r_list r Stats.r_recovery;
          if !phase1_done then begin
            bag_results := Codec.r_array r Codec.r_instance;
            phase1 := Stats.r_round_stats r;
            phase1_recovery := Stats.r_recovery r;
            gym := None;
            (get_gym ()).Yannakakis.read r
          end;
          Codec.r_end r);
      rebalance =
        (fun ~round ~dead ->
          (* Phase 1 carves the cluster into per-bag groups sized by p
             and phase 2 hashes bag results over all p servers — both
             placements are functions of p, so losing a server means
             replanning from scratch on the p−1 survivors. *)
          if dead < 0 || dead >= !p || !p <= 1 then `Continue
          else begin
            let replayed = (Instance.cardinal instance + !p - 1) / !p in
            restarts :=
              { zero_recovery with Stats.round; crashed = 1; replayed }
              :: !restarts;
            p := !p - 1;
            phase1_done := false;
            bag_results := Array.make nbags Instance.empty;
            phase1 := zero_round;
            phase1_recovery := zero_recovery;
            gym := None;
            `Restart
          end);
    };
  let result, stats2 = (get_gym ()).Yannakakis.finish () in
  let recoveries =
    let r1 = !phase1_recovery in
    let phase1_recoveries =
      if
        r1.Stats.crashed > 0 || r1.Stats.replayed > 0
        || r1.Stats.retransmitted > 0 || r1.Stats.duplicates > 0
        || r1.Stats.retries > 0 || r1.Stats.speculated > 0
      then [ r1 ]
      else []
    in
    (* Phase-2 rounds follow the single phase-1 round; job restarts
       interleave by the round their crash was detected before, ahead
       of same-round repair work. *)
    List.stable_sort
      (fun (a : Stats.recovery) b -> compare a.Stats.round b.Stats.round)
      (List.rev !restarts
      @ phase1_recoveries
      @ List.map
          (fun (r : Stats.recovery) -> { r with Stats.round = r.Stats.round + 1 })
          stats2.Stats.recoveries)
  in
  let stats =
    {
      Stats.p = !p;
      initial_max;
      rounds = !phase1 :: stats2.Stats.rounds;
      recoveries;
    }
  in
  (result, stats, Decomposition.width decomposition)
