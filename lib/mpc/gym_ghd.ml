open Lamp_relational
open Lamp_cq
module Sset = Decomposition.Sset

(* GYM over a tree decomposition (Section 3.2 / [6]): phase 1 evaluates
   every bag's join with one round of HyperCube on its own slice of the
   cluster; phase 2 runs the distributed Yannakakis passes over the bag
   results, whose tree is acyclic by the running-intersection
   property. *)

let bag_rel i = Fmt.str "\006bag%d" i

let bag_pseudo_atom i (b : Decomposition.bag) =
  Ast.atom (bag_rel i) (List.map (fun v -> Ast.Var v) (Sset.elements b.vars))

let bag_query i (b : Decomposition.bag) =
  Ast.make ~head:(bag_pseudo_atom i b) ~body:b.Decomposition.atoms ()

let run ?(seed = 0) ?decomposition ?executor ?(faults = Lamp_faults.Plan.none)
    ~p q instance =
  if not (Ast.is_positive q) then
    invalid_arg "Gym_ghd.run: defined for positive CQs";
  let decomposition =
    match decomposition with
    | Some d -> d
    | None -> (
      match Hypergraph.gyo q with
      | Some forest -> Decomposition.of_join_forest forest
      | None -> Decomposition.min_fill q)
  in
  (match Decomposition.validate q decomposition with
  | Ok () -> ()
  | Error msg -> invalid_arg (Fmt.str "Gym_ghd.run: invalid decomposition: %s" msg));
  (* Number the bags and remember the tree shape. *)
  let module Numbered = struct
    type t = {
      id : int;
      bag : Decomposition.bag;
      kids : t list;
    }
  end in
  let counter = ref 0 in
  let rec number (t : Decomposition.t) =
    let id = !counter in
    incr counter;
    let kids = List.map number t.Decomposition.children in
    { Numbered.id; bag = t.Decomposition.bag; kids }
  in
  let numbered = List.map number decomposition in
  let nbags = !counter in
  let p_bag = max 1 (p / nbags) in
  (* Phase 1: per-bag HyperCube joins on disjoint server groups. *)
  let bag_results = Array.make nbags Instance.empty in
  let phase1 =
    ref { Stats.max_received = 0; total_received = 0 }
  in
  (* Bag runs all belong to phase 1 — their recovery work is merged
     into a single round-1 record. *)
  let phase1_recovery =
    ref
      {
        Stats.round = 1;
        crashed = 0;
        replayed = 0;
        retransmitted = 0;
        duplicates = 0;
        retries = 0;
      }
  in
  let rec eval_bags { Numbered.id = i; bag; kids } =
    let bq = bag_query i bag in
    let shares, _ =
      Shares.optimize ~objective:Shares.Max_load ~p:p_bag
        ~sizes:(fun (a : Ast.atom) ->
          Tuple.Set.cardinal (Instance.tuples instance a.Ast.rel))
        bq
    in
    let result, stats =
      Hypercube.run_with_shares ~seed ?executor ~faults ~shares bq instance
    in
    bag_results.(i) <- result;
    (match stats.Stats.rounds with
    | [ r ] ->
      phase1 :=
        {
          Stats.max_received = max !phase1.Stats.max_received r.Stats.max_received;
          total_received = !phase1.Stats.total_received + r.Stats.total_received;
        }
    | _ -> assert false);
    List.iter
      (fun (r : Stats.recovery) ->
        let acc = !phase1_recovery in
        phase1_recovery :=
          {
            acc with
            Stats.crashed = acc.Stats.crashed + r.Stats.crashed;
            replayed = acc.replayed + r.replayed;
            retransmitted = acc.retransmitted + r.retransmitted;
            duplicates = acc.duplicates + r.duplicates;
            retries = acc.retries + r.retries;
          })
      stats.Stats.recoveries;
    List.iter eval_bags kids
  in
  List.iter eval_bags numbered;
  (* Phase 2: Yannakakis over the bag relations. *)
  let bag_instance =
    Array.fold_left Instance.union Instance.empty bag_results
  in
  let rec pseudo_tree { Numbered.id = i; bag; kids } =
    {
      Hypergraph.atom = bag_pseudo_atom i bag;
      vars = bag.Decomposition.vars;
      children = List.map pseudo_tree kids;
    }
  in
  let forest = List.map pseudo_tree numbered in
  let body = List.map (fun t -> t.Hypergraph.atom) (
    let rec flatten t = t :: List.concat_map flatten t.Hypergraph.children in
    List.concat_map flatten forest)
  in
  let q2 = Ast.make ~head:(Ast.head q) ~body () in
  let result, stats2 =
    Yannakakis.gym ~seed ~forest ?executor ~faults ~p q2 bag_instance
  in
  let recoveries =
    let r1 = !phase1_recovery in
    let phase1_recoveries =
      if
        r1.Stats.crashed > 0 || r1.Stats.replayed > 0
        || r1.Stats.retransmitted > 0 || r1.Stats.duplicates > 0
        || r1.Stats.retries > 0
      then [ r1 ]
      else []
    in
    (* Phase-2 rounds follow the single phase-1 round. *)
    phase1_recoveries
    @ List.map
        (fun (r : Stats.recovery) -> { r with Stats.round = r.Stats.round + 1 })
        stats2.Stats.recoveries
  in
  let stats =
    {
      Stats.p;
      initial_max = (Instance.cardinal instance + p - 1) / p;
      rounds = !phase1 :: stats2.Stats.rounds;
      recoveries;
    }
  in
  (result, stats, Decomposition.width decomposition)
