(** KST-style near-optimal multi-round join schedule
    (Ketsman–Suciu–Tao).

    The one-round HyperCube meets the skew-free load m/p^(1−1/ρ), but
    degenerates to m/√p (or worse) when heavy hitters exist. The
    multi-round schedule of Ketsman, Suciu and Tao restores
    near-optimal load on {e every} input by decomposing the query into
    {e heavy configurations}: for each set S of variables and each
    assignment of heavy values to S, the residual query (S frozen to
    those values) is skew-free in the remaining variables and runs on
    its own HyperCube subgrid. This module is the constant-round,
    binary-schema instantiation of that idea on the {!Cluster}
    simulator:

    - {b Round 1} routes every tuple that is light in some atom role
      through the ordinary HyperCube of the full query (the S = ∅
      configuration) and evaluates locally with the worst-case-optimal
      backend ({!Lamp_cq.Eval.Wcoj}); every query-relevant tuple also
      parks at its source server under a staged name.
    - {b Round 2} fans each staged tuple out to every configuration
      whose heavy assignment agrees with one of its atom roles — pinned
      by the hashed coordinates of the light variables it binds,
      replicated over the subgrid dimensions it does not — and again
      evaluates worst-case-optimally. Round-1 results ride along.

    Every output valuation ω belongs to exactly one configuration
    (S(ω) = its set of heavy values), whose servers receive all of ω's
    tuples, so the union over servers is exactly Q(I); duplicates
    across configurations are absorbed by the set semantics. The number
    of configurations is capped by doubling the degree threshold —
    values pushed back under it simply fall through to the light plan,
    which is always sound. *)

open Lamp_relational

val run :
  ?seed:int ->
  ?threshold:int ->
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  ?job:Lamp_jobs.Supervisor.t ->
  p:int ->
  Lamp_cq.Ast.t ->
  Instance.t ->
  Instance.t * Stats.t * int
(** [run ~p q i] evaluates the positive conjunctive query [q] (unary
    and binary atoms; constants and repeated variables allowed) on [p]
    servers in two rounds. Returns the result, the load statistics and
    the number of heavy configurations planned (0 on skew-free input,
    where the schedule collapses to plain HyperCube). The default
    threshold is {!Skew.default_threshold}; it doubles until the
    configuration count fits the cap.

    With [job], runs under {!Cluster.supervise}: checkpointed after
    every round and resumable. Staged tuples park at their round-1
    servers and the subgrid layout depends on p — cross-round
    rendezvous a topology change breaks — so a permanent crash-stop
    restarts the job from round 0 on the p−1 survivors, re-planned for
    the shrunk topology.

    @raise Invalid_argument on non-positive queries, atoms of arity
    outside [1, 2], or [p <= 0]. *)
