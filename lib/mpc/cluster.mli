(** The MPC cluster simulator (Section 3 of the paper).

    Computation proceeds in rounds, each a communication phase — every
    server emits (destination, fact) messages from its local data —
    followed by a computation phase local to each server. The simulator
    delivers all messages, records per-round load statistics, and updates
    the servers' local instances. At the end of an execution, the output
    is the union of the servers' local data.

    Execution is delegated to a {!Lamp_runtime.Executor}: the
    communication phase fans out one task per source server into
    per-worker outboxes, merged into per-destination inboxes without a
    global lock, and the computation phase runs one task per server.
    Local instances are persistent sets, so {!stats} and {!union_all}
    are bit-identical across backends — the pool changes wall-clock,
    never the model. *)

open Lamp_relational

type t

type round = {
  communicate : int -> Instance.t -> (int * Fact.t) list;
      (** [communicate src local]: the messages server [src] sends. *)
  compute : int -> received:Instance.t -> previous:Instance.t -> Instance.t;
      (** [compute i ~received ~previous]: server [i]'s new local
          instance from what it received this round and what it held
          before. *)
}

val create :
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  p:int ->
  Instance.t ->
  t
(** Round-robin initial partitioning: every server holds 1/p-th of the
    input, matching the model's assumption-free initial distribution.
    [executor] (default {!Lamp_runtime.Executor.sequential}) runs the
    rounds. [faults] (default {!Lamp_faults.Plan.none}) injects a
    deterministic fault plan into every round; see {!run_round}. *)

val create_with :
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  Instance.t array ->
  t
(** Start from an explicit initial partitioning (one instance per
    server). *)

val p : t -> int
val executor : t -> Lamp_runtime.Executor.t

val faults : t -> Lamp_faults.Plan.t
(** The fault plan rounds run under ({!Lamp_faults.Plan.none} by
    default). *)

val locals : t -> Instance.t array
val local : t -> int -> Instance.t

val union_all : t -> Instance.t
(** The output of the algorithm: the union over all servers. *)

val run_round : t -> round -> unit
(** Executes one round and records its load. Destinations are validated
    during the outbox fan-out: a message outside [0 .. p - 1] aborts the
    round before any state or statistic is updated.

    Under a fault plan, the round additionally checkpoints every
    server's local at the round start, crash-stops the plan's chosen
    servers, applies per-message fates, stalls and transiently fails
    tasks (absorbed by bounded retry), then recovers within the round:
    crashed servers' sends are replayed from the checkpoint, dropped and
    delayed messages retransmitted, and crashed destinations' inboxes
    redelivered to their replacements. The recovered round's loads,
    locals and output are bit-identical to a fault-free run; all repair
    traffic is accounted separately in [Stats.recoveries].
    @raise Invalid_argument on a message to a nonexistent server, naming
    the smallest offending source server, the offending fact, and its
    destination. *)

val stats : t -> Stats.t

(** {1 Job-level checkpointing} *)

val snapshot : t -> string
(** Versioned binary snapshot (via [Lamp_jobs.Codec]) of the whole
    cluster: topology ([p], initial partition sizes), every server's
    local instance and the per-round statistics and recoveries
    accumulated so far. Equal cluster states snapshot to identical
    bytes. The executor and fault plan are {e not} captured — they are
    reattached by {!restore}, so a checkpoint written by a sequential
    run resumes on the pool (and vice versa) with bit-identical
    results. *)

val restore :
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  string ->
  t
(** Rebuild the cluster a {!snapshot} captured; further {!run_round}
    calls continue exactly where the snapshot left off, and {!stats}
    stitches the checkpointed rounds with the new ones.
    @raise Lamp_jobs.Codec.Corrupt on a damaged snapshot. *)

val add_recovery : t -> Stats.recovery -> unit
(** Account an externally-performed repair (e.g. a job-level restart
    after a permanent crash) in this cluster's [Stats.recoveries]. *)

val supervise :
  ?job:Lamp_jobs.Supervisor.t ->
  name:string ->
  faults:Lamp_faults.Plan.t ->
  Lamp_jobs.Supervisor.script ->
  unit
(** Drive a job script. Without [job] the steps run inline with zero
    checkpoint cost. With [job], the control block's fingerprint is set
    to [name @ fault-plan] (so resuming under a different plan raises),
    the plan's [kill]/[perma] entries are honoured, and
    [Lamp_jobs.Supervisor.run] checkpoints after every step. Every
    multi-round entry point funnels through this. *)

val shrink : t -> round:int -> dead:int -> t
(** Survivor rebalancing for a permanent crash-stop of server [dead]
    detected before (1-indexed) [round]: the surviving p−1 servers
    keep their locals (servers above [dead] shift down one slot) and
    the dead server's checkpointed local is rehashed onto them by
    [Fact.hash]. Every rehashed fact is charged as replay traffic in a
    [Stats.recovery] record for [round]. Only correct for algorithms
    whose remaining rounds rehash from scratch (no cross-round
    rendezvous on a p-dependent hash) — others must restart from round
    0 on the shrunk cluster instead.
    @raise Invalid_argument when [dead] is out of range or [p = 1]. *)

(** {1 Phase combinators} *)

val route_by : (Fact.t -> int list) -> int -> Instance.t -> (int * Fact.t) list
(** Communication phase sending every local fact to the servers chosen
    by the routing function (possibly several: replication). *)

val keep_received : int -> received:Instance.t -> previous:Instance.t -> Instance.t
(** Computation phase that replaces local data with the received facts —
    a pure reshuffle. *)

val eval_query :
  ?strategy:Lamp_cq.Eval.strategy ->
  Lamp_cq.Ast.t -> int -> received:Instance.t -> previous:Instance.t -> Instance.t
(** Computation phase evaluating a query over the received facts; the
    local instance becomes the local result. [strategy] picks the local
    plan backend (default the binary join-order plan); the result is
    identical either way. *)
