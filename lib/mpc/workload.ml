open Lamp_relational

let rename_relation ~from_rel ~to_rel instance =
  Instance.fold
    (fun f acc ->
      if Fact.rel f = from_rel then Instance.add (Fact.make to_rel (Fact.args f)) acc
      else Instance.add f acc)
    instance Instance.empty

let join_skew_free ~m =
  (* R(i, m+i) and S(m+i, 2m+i): every value occurs once; the join has
     exactly m results. *)
  Instance.union
    (Generate.matching ~rel:"R" ~size:m ~offset:0 ())
    (Instance.of_facts
       (List.init m (fun i -> Fact.of_ints "S" [ m + i; (2 * m) + i ])))

let join_skewed ~m =
  (* All R tuples end in the hub 0 and all S tuples start there: the
     classic heavy hitter. *)
  Instance.union
    (Instance.of_facts (List.init m (fun i -> Fact.of_ints "R" [ i + 1; 0 ])))
    (Instance.of_facts
       (List.init m (fun i -> Fact.of_ints "S" [ 0; m + i + 1 ])))

let triangle_skew_free ~rng ~m ~domain =
  let mk rel =
    Generate.random_relation ~rng ~rel ~arity:2 ~size:m ~domain ()
  in
  Instance.union (mk "R") (Instance.union (mk "S") (mk "T"))

let triangle_from_graph graph =
  List.fold_left
    (fun acc rel -> Instance.union acc (rename_relation ~from_rel:"E" ~to_rel:rel graph))
    Instance.empty [ "R"; "S"; "T" ]

let triangle_y_skew ~rng ~m ~domain ~heavy_fraction =
  if heavy_fraction < 0.0 || heavy_fraction > 1.0 then
    invalid_arg "Workload.triangle_y_skew: fraction out of [0,1]";
  let heavy_m = int_of_float (float_of_int m *. heavy_fraction) in
  let light_m = m - heavy_m in
  let hub = domain in
  (* Heavy part: y pinned to the hub value; x and z stay uniform. *)
  let heavy_r =
    Instance.of_facts
      (List.init heavy_m (fun _ ->
           Fact.of_ints "R" [ Random.State.int rng domain; hub ]))
  and heavy_s =
    Instance.of_facts
      (List.init heavy_m (fun _ ->
           Fact.of_ints "S" [ hub; Random.State.int rng domain ]))
  in
  let light rel =
    Generate.random_relation ~rng ~rel ~arity:2 ~size:light_m ~domain ()
  in
  let t = Generate.random_relation ~rng ~rel:"T" ~arity:2 ~size:m ~domain () in
  Instance.union
    (Instance.union heavy_r (light "R"))
    (Instance.union (Instance.union heavy_s (light "S")) t)

let graph_pairs ~rng ~m ~domain =
  List.init m (fun _ ->
      (Random.State.int rng domain, Random.State.int rng domain))

let zipf_pairs ~rng ~m ~domain ~s =
  let sample = Generate.zipf_sampler ~rng ~n:domain ~s in
  List.init m (fun _ -> (sample (), sample ()))

let relations_from_pairs ~rels pairs =
  List.fold_left
    (fun acc rel ->
      List.fold_left
        (fun acc (a, b) -> Instance.add (Fact.of_ints rel [ a; b ]) acc)
        acc pairs)
    Instance.empty rels

let cycle_from_pairs ~rels pairs = relations_from_pairs ~rels pairs

let clique_from_pairs ~k pairs =
  relations_from_pairs ~rels:(Lamp_cq.Examples.clique_rels k) pairs

let acyclic_chain ~rng ~m ~domain ~rels =
  List.fold_left
    (fun acc rel ->
      Instance.union acc
        (Generate.random_relation ~rng ~rel ~arity:2 ~size:m ~domain ()))
    Instance.empty rels
