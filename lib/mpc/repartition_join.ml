open Lamp_relational
open Lamp_distribution

(* Example 3.1(1a): the repartition join. R(a,b) is sent to server
   h(b), S(c,d) to server h(c); every server then joins its received
   fragments. Optimal load m/p without skew; a heavy hitter in the join
   column drags its whole degree to one server. *)

let query = Lamp_cq.Examples.q1_join

let run ?(seed = 0) ?(materialize = true) ?executor ?faults ~p instance =
  Lamp_obs.Sketch.set_context "repartition";
  let cluster = Cluster.create ?executor ?faults ~p instance in
  let route fact =
    let args = Fact.args fact in
    match Fact.rel fact with
    | "R" when Array.length args = 2 ->
      [ Policy.hash_value ~seed ~buckets:p args.(1) ]
    | "S" when Array.length args = 2 ->
      [ Policy.hash_value ~seed ~buckets:p args.(0) ]
    | _ -> []
  in
  Cluster.run_round cluster
    {
      Cluster.communicate = Cluster.route_by route;
      compute =
        (if materialize then Cluster.eval_query query
         else fun _ ~received:_ ~previous:_ -> Instance.empty);
    };
  (Cluster.union_all cluster, Cluster.stats cluster)
