open Lamp_relational
open Lamp_distribution
open Lamp_cq
module Codec = Lamp_jobs.Codec

let run_with_shares ?(seed = 0) ?(materialize = true) ?strategy ?executor
    ?faults ~shares query instance =
  Lamp_obs.Sketch.set_context "hypercube";
  let policy, grid = Policy.hypercube ~seed ~name:"hypercube" ~query ~shares () in
  let cluster = Cluster.create ?executor ?faults ~p:(Grid.size grid) instance in
  Cluster.run_round cluster
    {
      Cluster.communicate =
        Cluster.route_by (fun f -> Policy.responsible_nodes policy f);
      compute =
        (if materialize then Cluster.eval_query ?strategy query
         else fun _ ~received:_ ~previous:_ -> Instance.empty);
    };
  (Cluster.union_all cluster, Cluster.stats cluster)

let sizes_of_instance instance (a : Ast.atom) =
  Tuple.Set.cardinal (Instance.tuples instance a.Ast.rel)

let run ?(seed = 0) ?(materialize = true) ?strategy ?executor ?faults ?job
    ?shares ~p query instance =
  if not (Ast.is_positive query) then
    invalid_arg "Hypercube.run: defined for positive CQs";
  Lamp_obs.Sketch.set_context "hypercube";
  let p0 = p in
  let shares_for ~p =
    match shares with
    | Some s when p = p0 -> s
    | _ ->
      (* Re-optimized for the current server count — in particular for
         the p−1 survivors after a permanent crash, where the caller's
         explicit shares (whose product is the old p) no longer fit. *)
      fst
        (Shares.optimize ~objective:Shares.Max_load ~p
           ~sizes:(sizes_of_instance instance) query)
  in
  let p = ref p in
  let shares_used = ref (shares_for ~p:!p) in
  let build () =
    let policy, grid =
      Policy.hypercube ~seed ~name:"hypercube" ~query ~shares:!shares_used ()
    in
    (policy, Grid.size grid)
  in
  let cluster =
    let _, size = build () in
    ref (Cluster.create ?executor ?faults ~p:size instance)
  in
  Cluster.supervise ?job ~name:"hypercube"
    ~faults:(match faults with Some f -> f | None -> Lamp_faults.Plan.none)
    {
      Lamp_jobs.Supervisor.step =
        (fun k ->
          if k >= 1 then `Done
          else begin
            let policy, _ = build () in
            Cluster.run_round !cluster
              {
                Cluster.communicate =
                  Cluster.route_by (fun f -> Policy.responsible_nodes policy f);
                compute =
                  (if materialize then Cluster.eval_query ?strategy query
                   else fun _ ~received:_ ~previous:_ -> Instance.empty);
              };
            `Done
          end);
      snapshot =
        (fun () ->
          let w = Codec.writer () in
          Codec.w_int w !p;
          Codec.w_string w (Cluster.snapshot !cluster);
          Codec.contents w);
      restore =
        (fun ~round:_ payload ->
          let r = Codec.reader payload in
          p := Codec.r_int r;
          shares_used := shares_for ~p:!p;
          cluster := Cluster.restore ?executor ?faults (Codec.r_string r);
          Codec.r_end r);
      rebalance =
        (fun ~round ~dead ->
          (* The grid is a function of p: losing a server means new
             shares, a new grid and a fresh replication of the input —
             restart on the survivors. *)
          let cp = Cluster.p !cluster in
          if dead < 0 || dead >= cp || !p <= 1 then `Continue
          else begin
            let shipped = Instance.cardinal (Cluster.local !cluster dead) in
            p := !p - 1;
            shares_used := shares_for ~p:!p;
            let _, size = build () in
            let fresh = Cluster.create ?executor ?faults ~p:size instance in
            Cluster.add_recovery fresh
              {
                Stats.round;
                crashed = 1;
                replayed = shipped;
                retransmitted = 0;
                duplicates = 0;
                retries = 0;
                speculated = 0;
              };
            cluster := fresh;
            `Restart
          end);
    };
  (Cluster.union_all !cluster, Cluster.stats !cluster, !shares_used)
