open Lamp_relational
open Lamp_distribution
open Lamp_cq

let run_with_shares ?(seed = 0) ?(materialize = true) ?executor ?faults
    ~shares query instance =
  let policy, grid = Policy.hypercube ~seed ~name:"hypercube" ~query ~shares () in
  let cluster = Cluster.create ?executor ?faults ~p:(Grid.size grid) instance in
  Cluster.run_round cluster
    {
      Cluster.communicate =
        Cluster.route_by (fun f -> Policy.responsible_nodes policy f);
      compute =
        (if materialize then Cluster.eval_query query
         else fun _ ~received:_ ~previous:_ -> Instance.empty);
    };
  (Cluster.union_all cluster, Cluster.stats cluster)

let sizes_of_instance instance (a : Ast.atom) =
  Tuple.Set.cardinal (Instance.tuples instance a.Ast.rel)

let run ?(seed = 0) ?(materialize = true) ?executor ?faults ?shares ~p query
    instance =
  if not (Ast.is_positive query) then
    invalid_arg "Hypercube.run: defined for positive CQs";
  let shares =
    match shares with
    | Some s -> s
    | None ->
      let s, _ =
        Shares.optimize ~objective:Shares.Max_load ~p
          ~sizes:(sizes_of_instance instance) query
      in
      s
  in
  let result, stats =
    run_with_shares ~seed ~materialize ?executor ?faults ~shares query instance
  in
  (result, stats, shares)
