(** The HyperCube algorithm (Example 3.2 / Section 3.1).

    Servers form a grid with one dimension per query variable; every
    fact is replicated to all grid cells compatible with the hashes of
    the variables it pins, and every server evaluates the query on what
    it receives. Correct by construction — the induced policy strongly
    saturates the query — with skew-free maximum load O(m/p^(1/tau))
    when the shares follow the fractional edge packing exponents. *)

open Lamp_relational

val run_with_shares :
  ?seed:int ->
  ?materialize:bool ->
  ?strategy:Lamp_cq.Eval.strategy ->
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  shares:(string * int) list ->
  Lamp_cq.Ast.t ->
  Instance.t ->
  Instance.t * Stats.t
(** One-round HyperCube with explicit shares. The number of servers is
    the product of the shares. [materialize:false] skips the local
    evaluation (the result is empty): load experiments on skewed inputs
    use it to avoid materializing quadratic outputs, since the load is
    determined entirely by the communication phase. *)

val run :
  ?seed:int ->
  ?materialize:bool ->
  ?strategy:Lamp_cq.Eval.strategy ->
  ?executor:Lamp_runtime.Executor.t ->
  ?faults:Lamp_faults.Plan.t ->
  ?job:Lamp_jobs.Supervisor.t ->
  ?shares:(string * int) list ->
  p:int ->
  Lamp_cq.Ast.t ->
  Instance.t ->
  Instance.t * Stats.t * (string * int) list
(** As {!run_with_shares}, choosing load-optimal integer shares for [p]
    servers when none are given (via {!Shares.optimize} with the actual
    relation sizes). Returns the shares used.

    With [job], the single round runs as a supervised job (checkpoint
    before and after; [kill=0] dies holding only the initial state). A
    permanent crash-stop restarts on the p−1 survivors with shares
    re-optimized for the shrunk grid — the grid is a function of p, so
    the caller's explicit shares cannot outlive the crash.
    @raise Invalid_argument on non-positive queries. *)
