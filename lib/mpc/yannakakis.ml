open Lamp_relational
open Lamp_cq

(* Named-column relations: the working representation of the Yannakakis
   passes. Columns are variable names; rows are value tuples. *)
module Rel = struct
  type t = {
    cols : string list;
    rows : Tuple.Set.t;
  }

  let cardinal r = Tuple.Set.cardinal r.rows

  let positions r cols =
    List.map
      (fun c ->
        match List.find_index (String.equal c) r.cols with
        | Some i -> i
        | None -> invalid_arg (Fmt.str "Yannakakis: unknown column %s" c))
      cols

  let key_of_row positions row = List.map (fun i -> row.(i)) positions

  let semijoin r1 r2 =
    let shared = List.filter (fun c -> List.mem c r2.cols) r1.cols in
    if shared = [] then if Tuple.Set.is_empty r2.rows then { r1 with rows = Tuple.Set.empty } else r1
    else begin
      let pos1 = positions r1 shared and pos2 = positions r2 shared in
      let keys = Hashtbl.create 64 in
      Tuple.Set.iter
        (fun row -> Hashtbl.replace keys (key_of_row pos2 row) ())
        r2.rows;
      {
        r1 with
        rows =
          Tuple.Set.filter
            (fun row -> Hashtbl.mem keys (key_of_row pos1 row))
            r1.rows;
      }
    end

  let join r1 r2 =
    let shared = List.filter (fun c -> List.mem c r2.cols) r1.cols in
    let extra = List.filter (fun c -> not (List.mem c r1.cols)) r2.cols in
    let pos1 = positions r1 shared
    and pos2 = positions r2 shared
    and pos_extra = positions r2 extra in
    let index = Hashtbl.create 64 in
    Tuple.Set.iter
      (fun row ->
        let key = key_of_row pos2 row in
        let prev = Option.value ~default:[] (Hashtbl.find_opt index key) in
        Hashtbl.replace index key (row :: prev))
      r2.rows;
    let rows =
      Tuple.Set.fold
        (fun row1 acc ->
          match Hashtbl.find_opt index (key_of_row pos1 row1) with
          | None -> acc
          | Some matches ->
            List.fold_left
              (fun acc row2 ->
                let combined =
                  Array.append row1
                    (Array.of_list (key_of_row pos_extra row2))
                in
                Tuple.Set.add combined acc)
              acc matches)
        r1.rows Tuple.Set.empty
    in
    { cols = r1.cols @ extra; rows }
end

(* The relation of a body atom: tuples of the atom's relation that match
   its constants and repeated variables, projected onto its distinct
   variables (in first-occurrence order). *)
let atom_relation instance (a : Ast.atom) =
  let cols =
    List.fold_left
      (fun acc t ->
        match t with
        | Ast.Var v when not (List.mem v acc) -> v :: acc
        | _ -> acc)
      [] a.Ast.terms
    |> List.rev
  in
  let rows =
    Tuple.Set.fold
      (fun tup acc ->
        if Tuple.arity tup <> List.length a.Ast.terms then acc
        else begin
          let binding = Hashtbl.create 4 in
          let ok = ref true in
          List.iteri
            (fun i t ->
              match t with
              | Ast.Const c -> if not (Value.equal c tup.(i)) then ok := false
              | Ast.Var v -> (
                match Hashtbl.find_opt binding v with
                | Some prev -> if not (Value.equal prev tup.(i)) then ok := false
                | None -> Hashtbl.add binding v tup.(i)))
            a.Ast.terms;
          if !ok then
            Tuple.Set.add
              (Array.of_list (List.map (Hashtbl.find binding) cols))
              acc
          else acc
        end)
      (Instance.tuples instance a.Ast.rel)
      Tuple.Set.empty
  in
  { Rel.cols; rows }

type reduced_tree = {
  atom : Ast.atom;
  mutable rel : Rel.t;
  children : reduced_tree list;
}

let rec of_join_tree instance (t : Hypergraph.join_tree) =
  {
    atom = t.Hypergraph.atom;
    rel = atom_relation instance t.Hypergraph.atom;
    children = List.map (of_join_tree instance) t.Hypergraph.children;
  }

(* Bottom-up then top-down semi-join passes: afterwards no relation
   contains a dangling tuple (the "full reducer"). *)
let rec reduce_up node =
  List.iter reduce_up node.children;
  List.iter
    (fun child -> node.rel <- Rel.semijoin node.rel child.rel)
    node.children

let rec reduce_down node =
  List.iter
    (fun child ->
      child.rel <- Rel.semijoin child.rel node.rel;
      reduce_down child)
    node.children

let full_reduce node =
  reduce_up node;
  reduce_down node

let rec join_up node =
  List.fold_left
    (fun acc child -> Rel.join acc (join_up child))
    node.rel node.children

exception Cyclic

let eval_acyclic q instance =
  if not (Ast.is_positive q) then
    invalid_arg "Yannakakis.eval_acyclic: defined for positive CQs";
  match Hypergraph.gyo q with
  | None -> raise Cyclic
  | Some forest ->
    let trees = List.map (of_join_tree instance) forest in
    List.iter full_reduce trees;
    let joined =
      match trees with
      | [] -> { Rel.cols = []; rows = Tuple.Set.singleton [||] }
      | first :: rest ->
        List.fold_left
          (fun acc tree -> Rel.join acc (join_up tree))
          (join_up first) rest
    in
    let head = Ast.head q in
    let make_fact row =
      let value_of = function
        | Ast.Const c -> c
        | Ast.Var v ->
          let i =
            match List.find_index (String.equal v) joined.Rel.cols with
            | Some i -> i
            | None -> assert false
          in
          row.(i)
      in
      Fact.of_list head.Ast.rel (List.map value_of head.Ast.terms)
    in
    Tuple.Set.fold
      (fun row acc -> Instance.add (make_fact row) acc)
      joined.Rel.rows Instance.empty

(* Sizes before/after full reduction, per atom — the quantity behind
   Yannakakis' guarantee that intermediate results stay bounded. *)
let reduction_report q instance =
  match Hypergraph.gyo q with
  | None -> raise Cyclic
  | Some forest ->
    let trees = List.map (of_join_tree instance) forest in
    let before =
      let rec sizes node =
        (node.atom, Rel.cardinal node.rel)
        :: List.concat_map sizes node.children
      in
      List.concat_map sizes trees
    in
    List.iter full_reduce trees;
    let after =
      let rec sizes node =
        (node.atom, Rel.cardinal node.rel)
        :: List.concat_map sizes node.children
      in
      List.concat_map sizes trees
    in
    List.map2 (fun (a, b) (_, c) -> (a, b, c)) before after

(* ------------------------------------------------------------------ *)
(* GYM: Yannakakis in MPC (Section 3.2 / [6]).                         *)

(* Load accounting for one repartition of two column-relations on their
   shared columns over p servers. The rows fan out over the executor
   into per-worker count vectors, summed afterwards — integer addition
   commutes, so the counts are backend-independent. *)
let repartition_stats ?(executor = Lamp_runtime.Executor.sequential) ~seed ~p
    (r1 : Rel.t) (r2 : Rel.t) shared =
  let module Executor = Lamp_runtime.Executor in
  let nw = Executor.workers executor in
  let per_worker = Array.init nw (fun _ -> Array.make p 0) in
  let account (r : Rel.t) =
    let pos = Rel.positions r shared in
    let rows = Array.of_seq (Tuple.Set.to_seq r.rows) in
    Executor.parallel_for executor ~n:(Array.length rows) (fun ~worker i ->
        let row = rows.(i) in
        let key =
          String.concat "\000"
            (List.map (fun j -> Value.to_string row.(j)) pos)
        in
        let dst = Hashtbl.seeded_hash (seed land max_int) key mod p in
        let counts = per_worker.(worker) in
        counts.(dst) <- counts.(dst) + 1)
  in
  account r1;
  account r2;
  let received = Array.make p 0 in
  Array.iter
    (Array.iteri (fun dst k -> received.(dst) <- received.(dst) + k))
    per_worker;
  let max_received = Array.fold_left max 0 received in
  let total_received = Array.fold_left ( + ) 0 received in
  ({ Stats.max_received; total_received }, received)

module Codec = Lamp_jobs.Codec

let w_rel w (r : Rel.t) =
  Codec.w_list w Codec.w_string r.Rel.cols;
  Codec.w_list w
    (fun w row -> Codec.w_array w Codec.w_value row)
    (Tuple.Set.elements r.Rel.rows)

let r_rel r =
  let cols = Codec.r_list r Codec.r_string in
  let rows =
    List.fold_left
      (fun acc row -> Tuple.Set.add row acc)
      Tuple.Set.empty
      (Codec.r_list r (fun r -> Codec.r_array r Codec.r_value))
  in
  { Rel.cols; rows }

(* One GYM round as a step: a level of bottom-up semi-joins, a level of
   top-down semi-joins, or a single join edge (the join rounds of one
   tree run one edge at a time, in [join_up] post-order). *)
type op = Up of int | Down of int | Edge of int * int

type gym_job = {
  nops : int;  (** Rounds in the plan: one {!exec} step each. *)
  exec : int -> unit;
  write : Lamp_jobs.Codec.w -> unit;
  read : Lamp_jobs.Codec.r -> unit;
  finish : unit -> Instance.t * Stats.t;
  shrink : round:int -> dead:int -> unit;
}

(* Numbered view of the reduced forest: pre-order ids address each
   node's mutable relation and join accumulator, so a checkpoint can be
   written and restored positionally. *)
type numbered = { id : int; node : reduced_tree; kids : numbered list }

let gym_job ?(seed = 0) ?forest ?executor ?(faults = Lamp_faults.Plan.none) ~p
    q instance =
  if p < 1 then invalid_arg "Yannakakis.gym: p < 1";
  Lamp_obs.Sketch.set_context "gym";
  let forest =
    match forest with Some f -> Some f | None -> Hypergraph.gyo q
  in
  match forest with
  | None -> raise Cyclic
  | Some forest ->
    let trees = List.map (of_join_tree instance) forest in
    let counter = ref 0 in
    let rec number t =
      let id = !counter in
      incr counter;
      { id; node = t; kids = List.map number t.children }
    in
    let roots = List.map number trees in
    let nodes =
      match trees with
      | [] -> [||]
      | first :: _ -> Array.make !counter first
    in
    let rec index nd =
      nodes.(nd.id) <- nd.node;
      List.iter index nd.kids
    in
    List.iter index roots;
    (* The running join result at each node ([None] until its first
       Edge op fires; a leaf's result is its reduced relation). *)
    let acc = Array.make (max 1 !counter) None in
    let get_acc id =
      match acc.(id) with Some r -> r | None -> nodes.(id).rel
    in
    let rec depth node =
      1 + List.fold_left (fun a c -> max a (depth c)) 0 node.children
    in
    let max_depth = List.fold_left (fun a t -> max a (depth t)) 0 trees in
    let rec edge_ops nd =
      List.concat_map edge_ops nd.kids
      @ List.map (fun k -> Edge (nd.id, k.id)) nd.kids
    in
    let ops =
      Array.of_list
        (List.init (max_depth - 1) (fun i -> Up (max_depth - 1 - i))
        @ List.init (max_depth - 1) (fun i -> Down (i + 1))
        @ List.concat_map edge_ops roots)
    in
    (* Mutable job state: current server count (shrinks on a permanent
       crash), completed rounds (newest first, with the per-server
       delivery counts the analytic fault accounting reads) and the
       rebalance records already charged. *)
    let p = ref p in
    let initial_max = (Instance.cardinal instance + !p - 1) / !p in
    let rounds = ref [] in
    let rebalances = ref [] in
    let push stats_list =
      (* Semi-joins at the same tree level run in the same round: their
         loads add per server only if they hash to the same servers; we
         conservatively merge by summing totals and taking the max of
         maxima (each operation uses its own hash seed, spreading
         load). The per-server delivery counts sum element-wise — the
         fault accounting below needs to know what a crashed server
         would have to re-fetch. *)
      match stats_list with
      | [] -> ()
      | _ ->
        let merged =
          List.fold_left
            (fun acc (s, _) ->
              {
                Stats.max_received =
                  max acc.Stats.max_received s.Stats.max_received;
                total_received =
                  acc.Stats.total_received + s.Stats.total_received;
              })
            { Stats.max_received = 0; total_received = 0 }
            stats_list
        in
        let merged_received = Array.make !p 0 in
        List.iter
          (fun (_, received) ->
            Array.iteri
              (fun i k -> merged_received.(i) <- merged_received.(i) + k)
              received)
          stats_list;
        rounds := (merged, merged_received) :: !rounds
    in
    let shared_cols (a : Rel.t) (b : Rel.t) =
      List.filter (fun c -> List.mem c b.Rel.cols) a.Rel.cols
    in
    let exec k =
      match ops.(k) with
      | Up level ->
        (* One level of bottom-up semi-joins, deepest first. *)
        let batch = ref [] in
        let rec visit d node =
          if d = level then
            List.iter
              (fun child ->
                batch :=
                  repartition_stats ?executor ~seed:(seed + (level * 31))
                    ~p:!p node.rel child.rel
                    (shared_cols node.rel child.rel)
                  :: !batch;
                node.rel <- Rel.semijoin node.rel child.rel)
              node.children
          else List.iter (visit (d + 1)) node.children
        in
        List.iter (visit 1) trees;
        push !batch
      | Down level ->
        let batch = ref [] in
        let rec visit d node =
          if d = level then
            List.iter
              (fun child ->
                batch :=
                  repartition_stats ?executor
                    ~seed:(seed + 1000 + (level * 31))
                    ~p:!p child.rel node.rel
                    (shared_cols child.rel node.rel)
                  :: !batch;
                child.rel <- Rel.semijoin child.rel node.rel)
              node.children
          else List.iter (visit (d + 1)) node.children
        in
        List.iter (visit 1) trees;
        push !batch
      | Edge (nid, cid) ->
        let a = get_acc nid and b = get_acc cid in
        push
          [
            repartition_stats ?executor ~seed:(seed + 2000) ~p:!p a b
              (shared_cols a b);
          ];
        acc.(nid) <- Some (Rel.join a b)
    in
    let write w =
      Codec.w_int w !p;
      Codec.w_list w Stats.w_recovery !rebalances;
      Codec.w_list w
        (fun w (rs, received) ->
          Stats.w_round_stats w rs;
          Codec.w_array w Codec.w_int received)
        !rounds;
      Array.iteri
        (fun i node ->
          w_rel w node.rel;
          Codec.w_option w w_rel acc.(i))
        nodes
    in
    let read r =
      p := Codec.r_int r;
      rebalances := Codec.r_list r Stats.r_recovery;
      rounds :=
        Codec.r_list r (fun r ->
            let rs = Stats.r_round_stats r in
            let received = Codec.r_array r Codec.r_int in
            (rs, received));
      Array.iteri
        (fun i node ->
          node.rel <- r_rel r;
          acc.(i) <- Codec.r_option r r_rel)
        nodes
    in
    let shrink ~round ~dead =
      if dead >= 0 && dead < !p && !p > 1 then begin
        (* Analytic, like the rest of GYM's fault model: the dead
           server's ~m/p resident share is rehashed onto the
           survivors; every later repartition hashes mod the new p. *)
        let replayed = (Instance.cardinal instance + !p - 1) / !p in
        rebalances :=
          {
            Stats.round;
            crashed = 1;
            replayed;
            retransmitted = 0;
            duplicates = 0;
            retries = 0;
            speculated = 0;
          }
          :: !rebalances;
        p := !p - 1
      end
    in
    let finish () =
      (* The cross-tree joins are coordinator-local (disjoint column
         sets, no repartition), so they cost no round. *)
      let joined =
        match roots with
        | [] -> { Rel.cols = []; rows = Tuple.Set.singleton [||] }
        | first :: rest ->
          List.fold_left
            (fun a nd -> Rel.join a (get_acc nd.id))
            (get_acc first.id) rest
      in
      let head = Ast.head q in
      let result =
        Tuple.Set.fold
          (fun row acc ->
            let value_of = function
              | Ast.Const c -> c
              | Ast.Var v ->
                let i =
                  match List.find_index (String.equal v) joined.Rel.cols with
                  | Some i -> i
                  | None -> assert false
                in
                row.(i)
            in
            Instance.add
              (Fact.of_list head.Ast.rel (List.map value_of head.Ast.terms))
              acc)
          joined.Rel.rows Instance.empty
      in
      let rounds_in_order = List.rev !rounds in
      (* Crash recovery, modelled analytically (GYM's data path runs on
         the coordinator — only loads are simulated per server): a
         server crashing during round r has the facts repartitioned to
         it that round re-shipped to its replacement; transient compute
         faults cost a retry each; a straggler past the speculation
         budget costs a backup copy. *)
      let recoveries =
        let module Plan = Lamp_faults.Plan in
        if Plan.is_none faults then []
        else begin
          let budget = Plan.speculation_budget faults in
          let _, analytic =
            List.fold_left
              (fun (round, acc) ((_ : Stats.round_stats), received) ->
                let crashed = ref 0 in
                let replayed = ref 0 in
                let retries = ref 0 in
                let speculated = ref 0 in
                for s = 0 to Array.length received - 1 do
                  if Plan.crashes faults ~round ~server:s then begin
                    incr crashed;
                    replayed := !replayed + received.(s)
                  end;
                  retries :=
                    !retries
                    + Plan.transient_failures faults ~round
                        ~phase:Plan.Compute ~task:s;
                  if budget > 0.0 then begin
                    let stall =
                      Plan.straggle_delay faults ~round ~phase:Plan.Compute
                        ~task:s
                    in
                    if
                      stall > 0.0
                      && (stall > budget
                         || stall = budget
                            && Plan.speculation_tie faults ~round
                                 ~phase:Plan.Compute ~task:s
                               = `Backup)
                    then incr speculated
                  end
                done;
                let acc =
                  if !crashed > 0 || !retries > 0 || !speculated > 0 then
                    {
                      Stats.round;
                      crashed = !crashed;
                      replayed = !replayed;
                      retransmitted = 0;
                      duplicates = 0;
                      retries = !retries;
                      speculated = !speculated;
                    }
                    :: acc
                  else acc
                in
                (round + 1, acc))
              (1, []) rounds_in_order
          in
          (* Rebalance records interleave with the per-round analytic
             ones; on the same round the rebalance happened first. *)
          List.stable_sort
            (fun a b -> compare a.Stats.round b.Stats.round)
            (List.rev !rebalances @ List.rev analytic)
        end
      in
      let stats =
        {
          Stats.p = !p;
          initial_max;
          rounds = List.map fst rounds_in_order;
          recoveries;
        }
      in
      (result, stats)
    in
    { nops = Array.length ops; exec; write; read; finish; shrink }

let gym ?seed ?forest ?executor ?(faults = Lamp_faults.Plan.none) ?job ~p q
    instance =
  let g = gym_job ?seed ?forest ?executor ~faults ~p q instance in
  Cluster.supervise ?job ~name:"gym" ~faults
    {
      Lamp_jobs.Supervisor.step =
        (fun k ->
          if k >= g.nops then `Done
          else begin
            g.exec k;
            if k = g.nops - 1 then `Done else `Continue
          end);
      snapshot =
        (fun () ->
          let w = Codec.writer () in
          g.write w;
          Codec.contents w);
      restore =
        (fun ~round:_ payload ->
          let r = Codec.reader payload in
          g.read r;
          Codec.r_end r);
      rebalance =
        (fun ~round ~dead ->
          g.shrink ~round ~dead;
          `Continue);
    };
  g.finish ()
