(** Load accounting for MPC executions.

    The MPC model measures algorithms by the {e load}: the number of
    facts a server receives during a round (Section 3). These statistics
    are what every experiment in this repository reports. *)

type round_stats = {
  max_received : int;  (** Largest per-server delivery this round. *)
  total_received : int;  (** Sum over servers (communication cost). *)
}

type recovery = {
  round : int;  (** The communication round the faults hit (1-based). *)
  crashed : int;  (** Servers that crash-stopped during the round. *)
  replayed : int;
      (** Facts re-shipped by replaying crashed servers' sends from
          their checkpoints, plus inbox facts redelivered to their
          replacements. *)
  retransmitted : int;  (** Dropped or delayed messages resent. *)
  duplicates : int;  (** Extra message copies shipped (merge dedups). *)
  retries : int;  (** Transient task faults absorbed by retry. *)
  speculated : int;
      (** Straggling tasks outrun by a speculative backup copy. *)
}
(** Repair work for one faulty round. Recovery traffic is accounted
    here, {e separately} from {!round_stats}: the per-round loads of the
    fault-free portion stay identical to a clean run's. *)

type t = {
  p : int;
  initial_max : int;  (** Largest initial partition (before round 1). *)
  rounds : round_stats list;
  recoveries : recovery list;  (** Empty on a fault-free run. *)
}

val rounds : t -> int
(** Number of communication rounds (synchronization barriers). *)

val recovery_rounds : t -> int
(** Rounds that needed any repair work. *)

val recovery_load : t -> int
(** Total facts shipped by recovery (replays + retransmissions +
    duplicate copies) — the overhead on top of {!total_communication}. *)

val crashes : t -> int
(** Total crash-stop failures over the run. *)

val retries : t -> int
(** Total transient task faults absorbed by retry. *)

val speculations : t -> int
(** Total straggling tasks replaced by a speculative backup copy. *)

val without_recoveries : t -> t
(** [t] with {!recoveries} emptied — the clean-run portion. Speculation
    and rebalancing must leave this part bit-identical. *)

val max_load : t -> int
(** Maximum per-server load over all rounds, including the initial
    partitioning. *)

val total_communication : t -> int
(** Total number of facts shipped over all rounds. *)

val replication_rate : m:int -> t -> float
(** Total communication divided by the input size [m] — the replication
    rate of the Shares literature. *)

val epsilon : m:int -> t -> float
(** The ε for which the measured max load equals [m / p^(1-ε)]: 0 is a
    perfect partitioning, 1 means some server saw all the data. The
    paper's bounds correspond to ε = 0 for a skew-free join, 1/3 for the
    one-round triangle, 1/2 for the grid join. *)

val target_load : m:int -> p:int -> epsilon:float -> float
(** The paper's load form [m / p^(1-ε)] — the budget a round at skew ε
    is entitled to. The per-round skew reports ([Obs.Sketch.report])
    compare their estimated max load against it. *)

val pp : t Fmt.t

val pp_skew : Format.formatter -> Lamp_obs.Sketch.report list -> unit
(** Render the obs-side per-round skew reports (sampled heavy-hitter
    statistics recorded during the run). They live in [Obs.Sketch]'s
    ring, {e not} in {!t}: [t] is bit-identical with sketching on or
    off. *)

val pp_rounds : t Fmt.t
(** Per-round breakdown: one line per communication round with that
    round's max and total delivery, preceded by the initial partition's
    max. For verbose CLI output; {!pp} stays the one-line form. *)

(** {1 Checkpoint codecs}

    Binary serialization of the statistics records, used by every
    job-level snapshot ([Cluster.snapshot], the GYM tree state, the
    Datalog fixpoint) so a resumed run stitches its statistics onto
    the checkpointed prefix. *)

val w_round_stats : Lamp_jobs.Codec.w -> round_stats -> unit
val r_round_stats : Lamp_jobs.Codec.r -> round_stats
val w_recovery : Lamp_jobs.Codec.w -> recovery -> unit
val r_recovery : Lamp_jobs.Codec.r -> recovery
