open Lamp_relational
open Lamp_cq
module Sset = Set.Make (String)
module Trace = Lamp_obs.Trace

let cnt_iterations = Trace.counter "datalog.iterations"
let delta_hist = Trace.histogram "datalog.delta"

(* Per-iteration instrumentation: delta size as both a sampled series
   (plots as a curve in the trace viewer — the shrinking frontier of a
   converging fixpoint) and a histogram. Read-only on [fresh]; guarded
   so the disabled path never computes [List.length]. *)
let note_iteration ~iteration fresh =
  if Trace.is_enabled () then begin
    let n = List.length fresh in
    Trace.incr cnt_iterations;
    Trace.observe delta_hist n;
    Trace.instant ~cat:"datalog"
      ~args:[ ("iteration", Trace.Int iteration); ("delta", Trace.Int n) ]
      "datalog.iteration";
    Trace.sample ~cat:"datalog" "datalog.delta" (float_of_int n)
  end

let delta_prefix = "\003delta_"

let materialize_adom instance =
  Value.Set.fold
    (fun v acc -> Instance.add (Fact.of_list "ADom" [ v ]) acc)
    (Instance.adom instance)
    instance

(* Semi-naive rule variants: for every occurrence of a recursive
   predicate in a rule's positive body, a copy of the rule where that
   occurrence reads only the last iteration's delta, materialized under
   a reserved relation name. *)
let recursive_heads rules =
  List.fold_left
    (fun acc r -> Sset.add (Ast.head r).Ast.rel acc)
    Sset.empty rules

let variants recursive r =
  let body = Ast.body r in
  List.concat
    (List.mapi
       (fun i (a : Ast.atom) ->
         if not (Sset.mem a.Ast.rel recursive) then []
         else
           [
             Ast.make ~negated:(Ast.negated r) ~diseq:(Ast.diseq r)
               ~head:(Ast.head r)
               ~body:
                 (List.mapi
                    (fun j (b : Ast.atom) ->
                      if i = j then
                        Ast.atom (delta_prefix ^ b.Ast.rel) b.Ast.terms
                      else b)
                    body)
               ();
           ])
       body)

(* ------------------------------------------------------------------ *)
(* Incremental engine (default)                                        *)

(* Both strategies run every stratum over ONE interned Plan.Db that
   lives for the whole evaluation: each round's derivations are
   appended (with O(1) duplicate detection), and the per-column hash
   indexes extend over the appended delta instead of being recreated
   per rule per iteration — the asymptotic leak of the instance-based
   engine below, which rebuilt a full index of the entire database for
   every rule variant in every round. *)

(* Evaluate each rule with a plan compiled against current relation
   counts, adding each derivation to [db] the moment it is found: only
   the genuinely new (relation, tuple) pairs are retained, so a round
   that re-derives millions of duplicates allocates nothing per
   duplicate beyond the head tuple itself. In-round visibility of fresh
   facts is sound here — strata are monotone and negated atoms read
   only completed lower strata — and cannot change the least model. *)
let derive_fresh db rules =
  List.fold_left
    (fun acc r ->
      let plan = Plan.make ~counts:(Plan.Db.count db) r in
      let rel = Plan.head_rel plan in
      List.fold_left
        (fun acc tup -> (rel, tup) :: acc)
        acc (Plan.derive plan db))
    [] rules

let naive_fixpoint_db db rules =
  let rec round i =
    match derive_fresh db rules with
    | [] -> ()
    | fresh ->
      note_iteration ~iteration:i fresh;
      round (i + 1)
  in
  round 1

let set_deltas db rec_rels fresh =
  let by_rel = Hashtbl.create 8 in
  List.iter
    (fun (rel, tup) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_rel rel) in
      Hashtbl.replace by_rel rel (tup :: prev))
    fresh;
  List.iter
    (fun rel ->
      Plan.Db.replace db ~rel:(delta_prefix ^ rel)
        (Option.value ~default:[] (Hashtbl.find_opt by_rel rel)))
    rec_rels

let seminaive_fixpoint_db db rules =
  let recursive = recursive_heads rules in
  let rule_variants = List.concat_map (variants recursive) rules in
  let rec_rels = Sset.elements recursive in
  let set_deltas fresh = set_deltas db rec_rels fresh in
  let rec iterate i fresh =
    match fresh with
    | [] -> ()
    | _ :: _ ->
      note_iteration ~iteration:i fresh;
      set_deltas fresh;
      iterate (i + 1) (derive_fresh db rule_variants)
  in
  (* First iteration: full evaluation; then delta-driven rounds. *)
  iterate 1 (derive_fresh db rules);
  (* The reserved delta relations never leak into the result. *)
  List.iter (fun rel -> Plan.Db.replace db ~rel:(delta_prefix ^ rel) []) rec_rels

type strategy =
  | Naive
  | Seminaive

let strategy_name = function Naive -> "naive" | Seminaive -> "seminaive"

(* One supervised step = one fixpoint iteration of the current stratum
   (the unit between which the engine's state is fully captured by the
   database: the semi-naive deltas live in reserved relations inside
   it, so a checkpoint needs nothing else beyond the two cursors). *)
let run_supervised ~strategy ~layers ~db job =
  let module Codec = Lamp_jobs.Codec in
  let module Supervisor = Lamp_jobs.Supervisor in
  let layers = Array.of_list layers in
  let stratum = ref 0 in
  let iter = ref 0 in
  let step _k =
    if !stratum >= Array.length layers then `Done
    else begin
      let rules = layers.(!stratum) in
      let recursive = recursive_heads rules in
      let rec_rels = Sset.elements recursive in
      let fresh =
        match strategy with
        | Naive -> derive_fresh !db rules
        | Seminaive ->
          (* First iteration: full evaluation; then delta-driven. *)
          if !iter = 0 then derive_fresh !db rules
          else derive_fresh !db (List.concat_map (variants recursive) rules)
      in
      match fresh with
      | [] ->
        (* Stratum converged: the reserved delta relations never leak
           into the next stratum or the result. *)
        if strategy = Seminaive then
          List.iter
            (fun rel -> Plan.Db.replace !db ~rel:(delta_prefix ^ rel) [])
            rec_rels;
        stratum := !stratum + 1;
        iter := 0;
        if !stratum >= Array.length layers then `Done else `Continue
      | _ :: _ ->
        note_iteration ~iteration:(!iter + 1) fresh;
        if strategy = Seminaive then set_deltas !db rec_rels fresh;
        iter := !iter + 1;
        `Continue
    end
  in
  job.Supervisor.fingerprint <-
    Fmt.str "datalog-%s/%d-strata" (strategy_name strategy)
      (Array.length layers);
  Supervisor.run job
    (Supervisor.inline_script ~step
       ~snapshot:(fun () ->
         let w = Codec.writer () in
         Codec.w_int w !stratum;
         Codec.w_int w !iter;
         Codec.w_instance w (Plan.Db.to_instance ~keep:(fun _ -> true) !db);
         Codec.contents w)
       ~restore:(fun ~round:_ payload ->
         let r = Codec.reader payload in
         stratum := Codec.r_int r;
         iter := Codec.r_int r;
         db := Plan.Db.of_instance (Codec.r_instance r);
         Codec.r_end r))

let run ?(strategy = Seminaive) ?job program instance =
  let db0 =
    if Program.uses_adom program then materialize_adom instance else instance
  in
  let layers = Stratify.layers program in
  let db = ref (Plan.Db.of_instance db0) in
  (match job with
  | Some job -> run_supervised ~strategy ~layers ~db job
  | None ->
    let fixpoint =
      match strategy with
      | Naive -> naive_fixpoint_db
      | Seminaive -> seminaive_fixpoint_db
    in
    List.iteri
      (fun i rules ->
        Trace.span ~cat:"datalog"
          ~args:
            [ ("stratum", Trace.Int i); ("rules", Trace.Int (List.length rules)) ]
          "datalog.stratum"
          (fun () -> fixpoint !db rules))
      layers);
  Plan.Db.to_instance
    ~keep:(fun rel -> not (String.starts_with ~prefix:delta_prefix rel))
    !db

let query ?strategy ?job program ~output instance =
  let db = run ?strategy ?job program instance in
  Instance.filter (fun f -> Fact.rel f = output) db

(* ------------------------------------------------------------------ *)
(* Reference engine (pre-interning, instance-based)                    *)

(* The engine this PR replaced, kept verbatim on Eval.Reference so the
   equivalence suite and the e12 benchmark can compare against it: a
   full Index.create per rule (variant) per iteration, persistent-set
   unions everywhere. *)

let naive_fixpoint_ref rules db =
  let rec iterate db =
    let additions =
      List.fold_left
        (fun acc r -> Instance.union acc (Eval.Reference.eval r db))
        Instance.empty rules
    in
    if Instance.subset additions db then db
    else iterate (Instance.union db additions)
  in
  iterate db

let seminaive_fixpoint_ref rules db =
  let recursive = recursive_heads rules in
  let rule_variants = List.map (fun r -> (r, variants recursive r)) rules in
  let rename_delta delta =
    Instance.fold
      (fun f acc ->
        Instance.add (Fact.make (delta_prefix ^ Fact.rel f) (Fact.args f)) acc)
      delta Instance.empty
  in
  let initial =
    List.fold_left
      (fun acc r -> Instance.union acc (Eval.Reference.eval r db))
      Instance.empty rules
  in
  let rec iterate total delta =
    if Instance.is_empty delta then total
    else begin
      let view = Instance.union total (rename_delta delta) in
      let additions =
        List.fold_left
          (fun acc (_, vs) ->
            List.fold_left
              (fun acc v -> Instance.union acc (Eval.Reference.eval v view))
              acc vs)
          Instance.empty rule_variants
      in
      let fresh = Instance.diff additions total in
      iterate (Instance.union total fresh) fresh
    end
  in
  iterate (Instance.union db initial) (Instance.diff initial db)

let run_reference ?(strategy = Seminaive) program instance =
  let db =
    if Program.uses_adom program then materialize_adom instance else instance
  in
  let layers = Stratify.layers program in
  let fixpoint =
    match strategy with
    | Naive -> naive_fixpoint_ref
    | Seminaive -> seminaive_fixpoint_ref
  in
  List.fold_left (fun db rules -> fixpoint rules db) db layers
