(** Evaluation of stratified Datalog programs.

    Programs are evaluated stratum by stratum (negation always refers to
    already-computed layers), each stratum by a naive or a semi-naive
    fixpoint. The semi-naive strategy only re-derives from facts that
    are new since the previous iteration; both strategies compute the
    same model, which the test suite checks by property.

    Both strategies run on one interned {!Lamp_cq.Plan.Db} that
    persists across rounds and strata: each round's delta is appended
    and the hash indexes extend incrementally instead of being rebuilt
    per rule per iteration. The previous instance-based engine is kept
    as {!run_reference} for equivalence tests and benchmarks. *)

open Lamp_relational

val materialize_adom : Instance.t -> Instance.t
(** Adds [ADom(v)] for every active-domain value — the predicate the
    paper's Q¬TC program reads. Applied automatically by {!run} when the
    program mentions [ADom]. *)

type strategy =
  | Naive
  | Seminaive

val run :
  ?strategy:strategy ->
  ?job:Lamp_jobs.Supervisor.t ->
  Program.t ->
  Instance.t ->
  Instance.t
(** The program's perfect model: the input plus all derived IDB facts
    (plus [ADom] when used).

    With [job], every fixpoint iteration of every stratum is one
    supervised, checkpointed step: the checkpoint is the interned
    database (the semi-naive deltas live in reserved relations inside
    it) plus the stratum/iteration cursors, so a killed evaluation
    resumes mid-stratum with a bit-identical model. The fixpoint is
    coordinator-resident — no servers exist to crash permanently, so
    no rebalancing applies.
    @raise Stratify.Not_stratifiable on programs with negative cycles —
    use [Wellfounded] for those. *)

val query :
  ?strategy:strategy ->
  ?job:Lamp_jobs.Supervisor.t ->
  Program.t ->
  output:string ->
  Instance.t ->
  Instance.t
(** [run] restricted to one output relation. *)

val run_reference : ?strategy:strategy -> Program.t -> Instance.t -> Instance.t
(** The pre-interning engine (a fresh index of the whole database per
    rule per iteration, over {!Lamp_cq.Eval.Reference}): computes the
    same model as {!run}; kept as the oracle for equivalence tests and
    the old-vs-new e12 benchmark. *)
