(* lamp — command-line interface to the library.

   Subcommands mirror the paper's workflows: evaluate queries, check
   parallel-correctness and transfer, run the MPC algorithms with load
   statistics, evaluate Datalog programs, and classify queries in the
   monotonicity hierarchy. Run `lamp --help` or see README.md. *)

open Lamp
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)

let query_arg =
  let doc = "The conjunctive query, e.g. 'H(x,z) <- R(x,y), S(y,z)'." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let instance_arg =
  let doc = "Inline instance, e.g. 'R(1,2). S(2,3)'." in
  Arg.(value & opt (some string) None & info [ "instance"; "i" ] ~docv:"FACTS" ~doc)

let instance_file_arg =
  let doc = "File holding the instance (same textual format)." in
  Arg.(
    value
    & opt (some string) None
    & info [ "instance-file"; "f" ] ~docv:"FILE" ~doc)

let load_instance inline file =
  match inline, file with
  | Some s, None -> Relational.Instance.of_string s
  | None, Some path -> Relational.Instance.of_string (read_file path)
  | Some _, Some _ ->
    invalid_arg "give either --instance or --instance-file, not both"
  | None, None -> invalid_arg "an instance is required (--instance or --instance-file)"

let p_arg =
  let doc = "Number of servers." in
  Arg.(value & opt int 8 & info [ "p" ] ~docv:"P" ~doc)

let seed_arg =
  let doc = "Hash seed." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let backend_arg =
  let doc =
    "Execution backend for the simulator: $(b,seq) (sequential) or $(b,pool) \
     (lamp.runtime domain pool). Load statistics are identical either way."
  in
  Arg.(value & opt string "seq" & info [ "backend" ] ~docv:"BACKEND" ~doc)

let domains_arg =
  let doc = "Domain-pool size for --backend=pool (default: recommended)." in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let faults_arg =
  let doc =
    "Deterministic fault plan for the simulator: comma-separated key=value \
     fields among $(b,crash), $(b,drop), $(b,dup), $(b,delay), \
     $(b,straggle), $(b,transient) (probabilities), $(b,speculate) \
     (straggler speculation budget in seconds), $(b,kill)=ROUND (process \
     death after that round's checkpoint; needs --checkpoint), \
     $(b,perma)=ROUND:SERVER (permanent crash-stop, rebalanced onto the \
     survivors; needs --checkpoint) plus the bare flag $(b,reorder); or \
     the presets $(b,none) and $(b,chaos). Example: \
     --faults=crash=0.1,drop=0.05,reorder. Faults are injected and \
     recovered within each round; the output and per-round loads are \
     bit-identical to the fault-free run, with recovery work reported \
     separately."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let fault_seed_arg =
  let doc = "Seed of the fault plan (decisions are pure functions of it)." in
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"N" ~doc)

let parse_faults spec seed =
  match spec with
  | None -> Faults.Plan.none
  | Some s -> Faults.Plan.of_string ~seed s

let checkpoint_arg =
  let doc =
    "Directory for durable job checkpoints: the run becomes a supervised \
     job, checkpointed after every round. Combine with --resume to continue \
     a killed run and --kill-after-round to simulate the death."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)

let disk_faults_arg =
  let doc =
    "Deterministic disk-fault plan for the checkpoint store (needs \
     --checkpoint): comma-separated key=value fields among $(b,rot), \
     $(b,truncate), $(b,enospc), $(b,litter) (per-save probabilities) and \
     $(b,crash)=ROUND:POINT — a one-shot simulated power cut during that \
     round's save, with POINT among $(b,torn):FRAC (the write tears at \
     that fraction of the slot), $(b,pre-rename) and $(b,post-rename) (the \
     rename is lost); or the presets $(b,none) and $(b,chaos). Example: \
     --disk-faults=crash=2:torn:0.5. After a simulated crash, rerun with \
     --resume (and the crash= field dropped): recovery verifies checksums, \
     falls back to the previous slot generation when the freshest one is \
     damaged, and converges to bit-identical output."
  in
  Arg.(
    value & opt (some string) None & info [ "disk-faults" ] ~docv:"SPEC" ~doc)

let disk_fault_seed_arg =
  let doc = "Seed of the disk-fault plan." in
  Arg.(value & opt int 0 & info [ "disk-fault-seed" ] ~docv:"N" ~doc)

let parse_disk_faults spec seed =
  match spec with
  | None -> Faults.Disk.none
  | Some s -> Faults.Disk.of_string ~seed s

let resume_arg =
  let doc =
    "Resume from the checkpoint in --checkpoint=DIR instead of starting \
     over. The resumed run must use the same algorithm, fault plan and \
     configuration (checkpoints are fingerprinted); its output and stats \
     are bit-identical to an uninterrupted run."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let kill_after_arg =
  let doc =
    "Simulate a process death immediately after the round-$(docv) \
     checkpoint is persisted (0 = before any work). The command exits \
     cleanly; rerun with --resume to continue."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "kill-after-round" ] ~docv:"K" ~doc)

(* Builds the job control block when --checkpoint was given and runs
   [f] under it, turning the simulated death into a clean exit with a
   hint instead of a crash. *)
let with_job ~name ?(disk_faults = Faults.Disk.none) checkpoint resume
    kill_after f =
  match checkpoint with
  | None ->
    if resume then invalid_arg "--resume requires --checkpoint=DIR";
    if kill_after <> None then
      invalid_arg "--kill-after-round requires --checkpoint=DIR";
    if not (Faults.Disk.is_none disk_faults) then
      invalid_arg "--disk-faults requires --checkpoint=DIR";
    f None
  | Some dir ->
    if not (Faults.Disk.is_none disk_faults) then
      Fmt.pr "disk-faults: %a@." Faults.Disk.pp disk_faults;
    let store = Jobs.Store.on_disk ~faults:disk_faults dir in
    let job =
      Jobs.Supervisor.create ?kill_after_round:kill_after ~resume ~store name
    in
    (try
       f (Some job);
       Fmt.pr "job:    %a@." Jobs.Supervisor.pp_outcome job
     with
    | Jobs.Supervisor.Killed { job = j; round } ->
      Fmt.pr "job %s killed after its round-%d checkpoint; rerun with \
              --resume to continue@."
        j round
    | Jobs.Io.Crashed { job = j; round; point } ->
      Fmt.pr "job %s hit a simulated power cut (%s) during its round-%d \
              checkpoint save; rerun with --resume (and without crash= in \
              --disk-faults) to recover@."
        j point round)

let trace_arg =
  let doc =
    "Write a Chrome trace_event file of the run (load it in Perfetto or \
     chrome://tracing): MPC phase spans, per-server deliveries, engine \
     counters."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Print an aggregated profile (spans by name, counters, histograms) after \
     the command."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let verbose_arg =
  let doc = "Print the per-round load breakdown, not just the totals." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

(* Enables the collector when either export was asked for, runs [f],
   then writes/prints them — also on error, so a failed run still
   leaves its partial trace. *)
let with_obs trace profile f =
  if trace <> None || profile then Obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun path ->
          Obs.Export.write_chrome path;
          Fmt.epr "wrote %s@." path)
        trace;
      if profile then Fmt.pr "%a" Obs.Export.pp_report ())
    f

(* Builds the executor and runs [f] with it, tearing the pool down
   afterwards even on error. *)
let with_executor backend domains f =
  match backend with
  | "seq" -> f Runtime.Executor.sequential
  | "pool" ->
    let pool = Runtime.Pool.create ?domains () in
    Fun.protect
      ~finally:(fun () -> Runtime.Pool.shutdown pool)
      (fun () -> f (Runtime.Executor.pool pool))
  | other -> invalid_arg (Fmt.str "unknown backend %S (seq or pool)" other)

let wrap f =
  try f (); 0
  with
  | Invalid_argument msg | Failure msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Cq.Parser.Parse_error msg ->
    Fmt.epr "parse error: %s@." msg;
    1
  | Cq.Ast.Unsafe msg ->
    Fmt.epr "unsafe query: %s@." msg;
    1
  | Serve.Client.Server_error (code, msg) ->
    let name =
      match code with
      | Serve.Wire.Bad_request -> "bad request"
      | Rejected -> "rejected"
      | Throttled -> "throttled"
      | Failed -> "failed"
      | Overloaded { retry_after_s } ->
        Printf.sprintf "overloaded, retry after %gs" retry_after_s
      | Corrupt_frame -> "corrupt frame"
    in
    Fmt.epr "server error (%s): %s@." name msg;
    1
  | Serve.Client.Connection_lost msg ->
    Fmt.epr "connection lost: %s@." msg;
    1
  | Serve.Client.Timed_out msg ->
    Fmt.epr "timed out: %s@." msg;
    1
  | Serve.Client.Protocol_error msg ->
    Fmt.epr "protocol error: %s@." msg;
    1
  | Transducer.Scheduler.Did_not_quiesce { transitions; in_flight } ->
    Fmt.epr
      "error: network did not quiesce within %d transitions (%d messages \
       still in flight); raise --max-transitions or suspect divergence@."
      transitions in_flight;
    1

(* ------------------------------------------------------------------ *)
(* Policy specifications                                               *)

(* hash:p=4:R=1,S=0          hash R's column 1 and S's column 0 over 4 nodes
   hypercube:x=2,y=2,z=2     HyperCube grid for the given query
   file:PATH                 explicit policy: lines "NODE: fact. fact."  *)
let parse_policy ~query ~universe spec =
  match String.split_on_char ':' spec with
  | "hash" :: rest ->
    let p = ref 4 and positions = ref [] in
    List.iter
      (fun part ->
        String.split_on_char ',' part
        |> List.iter (fun kv ->
               match String.split_on_char '=' kv with
               | [ "p"; n ] -> p := int_of_string n
               | [ rel; pos ] -> positions := (rel, int_of_string pos) :: !positions
               | _ -> invalid_arg ("bad hash policy component: " ^ kv)))
      rest;
    Distribution.Policy.hash_by_position ~universe ~name:spec ~p:!p
      (List.rev !positions)
  | [ "hypercube"; shares ] ->
    let shares =
      String.split_on_char ',' shares
      |> List.map (fun kv ->
             match String.split_on_char '=' kv with
             | [ v; s ] -> (v, int_of_string s)
             | _ -> invalid_arg ("bad share: " ^ kv))
    in
    let policy, _ =
      Distribution.Policy.hypercube ~universe ~name:spec ~query ~shares ()
    in
    policy
  | [ "file"; path ] ->
    let assignments =
      read_file path
      |> String.split_on_char '\n'
      |> List.filter_map (fun raw ->
             let raw = String.trim raw in
             if raw = "" || raw.[0] = '#' then None
             else
               match String.index_opt raw ':' with
               | None -> invalid_arg ("bad policy line: " ^ raw)
               | Some i ->
                 let node = int_of_string (String.trim (String.sub raw 0 i)) in
                 let facts =
                   Relational.Instance.of_string
                     (String.sub raw (i + 1) (String.length raw - i - 1))
                 in
                 Some (node, Relational.Instance.facts facts))
    in
    Distribution.Policy.explicit ~universe ~name:spec assignments
  | _ ->
    invalid_arg
      (Fmt.str
         "unknown policy spec %S (expected hash:..., hypercube:..., file:PATH)"
         spec)

let policy_arg =
  let doc =
    "Distribution policy: 'hash:p=4:R=1,S=0' (hash listed columns), \
     'hypercube:x=2,y=2,z=2' (grid for the query), or 'file:PATH' (explicit \
     'node: facts' lines)."
  in
  Arg.(required & opt (some string) None & info [ "policy" ] ~docv:"POLICY" ~doc)

let universe_arg =
  let doc = "Universe values (comma-separated); defaults to the instance's \
             active domain, or {a,b} when no instance is given." in
  Arg.(value & opt (some string) None & info [ "universe" ] ~docv:"VALUES" ~doc)

let resolve_universe universe instance =
  match universe with
  | Some s ->
    Relational.Value.set_of_list
      (List.map Relational.Value.of_string (String.split_on_char ',' s))
  | None -> (
    match instance with
    | Some i when not (Relational.Instance.is_empty i) -> Relational.Instance.adom i
    | _ ->
      Relational.Value.set_of_list
        [ Relational.Value.str "a"; Relational.Value.str "b" ])

(* ------------------------------------------------------------------ *)
(* eval                                                                *)

let plan_strategy_arg =
  let doc =
    "Plan backend: $(b,binary) (the seed join-order plan) or $(b,wcoj) \
     (worst-case-optimal leapfrog join over the same column indexes). \
     Results are bit-identical."
  in
  Arg.(value & opt string "binary" & info [ "plan" ] ~docv:"STRATEGY" ~doc)

let parse_strategy s =
  match Cq.Eval.strategy_of_string s with
  | Ok st -> st
  | Error msg -> invalid_arg msg

let eval_cmd =
  let run query inline file strategy trace profile =
    wrap (fun () ->
        with_obs trace profile (fun () ->
            let strategy = parse_strategy strategy in
            let q = Cq.Parser.query query in
            let i = load_instance inline file in
            let result = Cq.Eval.eval ~strategy q i in
            Fmt.pr "%a@." Relational.Instance.pp result;
            Fmt.pr "(%d facts)@." (Relational.Instance.cardinal result)))
  in
  let doc = "Evaluate a conjunctive query (with !negation and != allowed)." in
  Cmd.v (Cmd.info "eval" ~doc)
    Term.(
      const run $ query_arg $ instance_arg $ instance_file_arg
      $ plan_strategy_arg $ trace_arg $ profile_arg)

(* ------------------------------------------------------------------ *)
(* pc                                                                  *)

let pc_cmd =
  let run query policy_spec universe inline file =
    wrap (fun () ->
        let q = Cq.Parser.query query in
        let instance =
          match inline, file with
          | None, None -> None
          | _ -> Some (load_instance inline file)
        in
        let universe = resolve_universe universe instance in
        let policy = parse_policy ~query:q ~universe policy_spec in
        (match instance with
        | Some i -> (
          match Correctness.Parallel_correctness.on_instance q policy i with
          | Ok () -> Fmt.pr "parallel-correct on the given instance@."
          | Error v ->
            Fmt.pr "NOT parallel-correct on the instance:@.";
            Fmt.pr "  missing: %a@." Relational.Instance.pp
              v.Correctness.Parallel_correctness.missing;
            Fmt.pr "  extra:   %a@." Relational.Instance.pp
              v.Correctness.Parallel_correctness.extra)
        | None -> ());
        if Cq.Ast.has_negation q then begin
          let verdict = Correctness.Negation.decide q policy in
          (match verdict.Correctness.Negation.sound with
          | Ok () -> Fmt.pr "parallel-sound under the policy@."
          | Error i ->
            Fmt.pr "NOT parallel-sound; counterexample: %a@."
              Relational.Instance.pp i);
          match verdict.Correctness.Negation.complete with
          | Ok () -> Fmt.pr "parallel-complete under the policy@."
          | Error i ->
            Fmt.pr "NOT parallel-complete; counterexample: %a@."
              Relational.Instance.pp i
        end
        else
          match Correctness.Parallel_correctness.decide q policy with
          | Ok () -> Fmt.pr "parallel-correct under the policy (all instances)@."
          | Error v ->
            Fmt.pr "NOT parallel-correct: %a@." Correctness.Saturation.pp_violation v)
  in
  let doc =
    "Decide parallel-correctness of a query under a distribution policy \
     (Proposition 4.6 / Theorem 4.9)."
  in
  Cmd.v (Cmd.info "pc" ~doc)
    Term.(
      const run $ query_arg $ policy_arg $ universe_arg $ instance_arg
      $ instance_file_arg)

(* ------------------------------------------------------------------ *)
(* transfer                                                            *)

let transfer_cmd =
  let to_arg =
    let doc = "The target query Q'." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY'" ~doc)
  in
  let run from_q to_q =
    wrap (fun () ->
        let q = Cq.Parser.query from_q and q' = Cq.Parser.query to_q in
        match Correctness.Transfer.covers_result q q' with
        | Ok () -> Fmt.pr "parallel-correctness transfers (Q covers Q')@."
        | Error v ->
          Fmt.pr "does NOT transfer: %a@." Correctness.Transfer.pp_violation v)
  in
  let doc =
    "Decide whether parallel-correctness transfers from one query to another \
     (Proposition 4.13)."
  in
  Cmd.v (Cmd.info "transfer" ~doc) Term.(const run $ query_arg $ to_arg)

(* ------------------------------------------------------------------ *)
(* hypercube                                                           *)

let hypercube_cmd =
  let run query inline file p seed backend domains faults_spec fault_seed
      checkpoint resume kill_after disk_faults_spec disk_fault_seed trace
      profile verbose =
    wrap (fun () ->
        with_obs trace profile (fun () ->
            let q = Cq.Parser.query query in
            let i = load_instance inline file in
            let faults = parse_faults faults_spec fault_seed in
            if not (Faults.Plan.is_none faults) then
              Fmt.pr "faults: %a@." Faults.Plan.pp faults;
            with_job ~name:"hypercube"
              ~disk_faults:(parse_disk_faults disk_faults_spec disk_fault_seed)
              checkpoint resume kill_after
              (fun job ->
                let result, stats, shares =
                  with_executor backend domains (fun executor ->
                      Mpc.Hypercube.run ~seed ~executor ~faults ?job ~p q i)
                in
                Fmt.pr "shares: %a@."
                  Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string int))
                  shares;
                Fmt.pr "result: %a@." Relational.Instance.pp result;
                Fmt.pr "stats:  %a@." Mpc.Stats.pp stats;
                if verbose then Fmt.pr "%a" Mpc.Stats.pp_rounds stats;
                Fmt.pr "tau* = %.3f, load exponent eps = %.3f@."
                  (Cq.Hypergraph.tau_star q)
                  (Mpc.Stats.epsilon ~m:(Relational.Instance.cardinal i) stats))))
  in
  let doc = "Run the one-round HyperCube algorithm and report loads." in
  Cmd.v (Cmd.info "hypercube" ~doc)
    Term.(
      const run $ query_arg $ instance_arg $ instance_file_arg $ p_arg
      $ seed_arg $ backend_arg $ domains_arg $ faults_arg $ fault_seed_arg
      $ checkpoint_arg $ resume_arg $ kill_after_arg $ disk_faults_arg
      $ disk_fault_seed_arg $ trace_arg $ profile_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* kst                                                                 *)

let kst_cmd =
  let threshold_arg =
    let doc =
      "Heavy-hitter degree threshold; defaults to m/p. Doubles \
       automatically until the heavy-configuration count fits the cap."
    in
    Arg.(value & opt (some int) None & info [ "threshold" ] ~docv:"N" ~doc)
  in
  let run query inline file p seed threshold backend domains faults_spec
      fault_seed checkpoint resume kill_after disk_faults_spec disk_fault_seed
      trace profile verbose =
    wrap (fun () ->
        with_obs trace profile (fun () ->
            let q = Cq.Parser.query query in
            let i = load_instance inline file in
            let faults = parse_faults faults_spec fault_seed in
            if not (Faults.Plan.is_none faults) then
              Fmt.pr "faults: %a@." Faults.Plan.pp faults;
            with_job ~name:"kst"
              ~disk_faults:(parse_disk_faults disk_faults_spec disk_fault_seed)
              checkpoint resume kill_after (fun job ->
                let result, stats, combos =
                  with_executor backend domains (fun executor ->
                      Mpc.Kst.run ~seed ?threshold ~executor ~faults ?job ~p
                        q i)
                in
                Fmt.pr "heavy configurations: %d@." combos;
                Fmt.pr "result: %a@." Relational.Instance.pp result;
                Fmt.pr "stats:  %a@." Mpc.Stats.pp stats;
                if verbose then Fmt.pr "%a" Mpc.Stats.pp_rounds stats)))
  in
  let doc =
    "Run the KST-style near-optimal multi-round schedule: heavy/light \
     decomposition into per-configuration HyperCube subgrids, \
     worst-case-optimal local evaluation."
  in
  Cmd.v (Cmd.info "kst" ~doc)
    Term.(
      const run $ query_arg $ instance_arg $ instance_file_arg $ p_arg
      $ seed_arg $ threshold_arg $ backend_arg $ domains_arg $ faults_arg
      $ fault_seed_arg $ checkpoint_arg $ resume_arg $ kill_after_arg
      $ disk_faults_arg $ disk_fault_seed_arg $ trace_arg $ profile_arg
      $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* gym                                                                 *)

let gym_cmd =
  let run query inline file p backend domains faults_spec fault_seed checkpoint
      resume kill_after disk_faults_spec disk_fault_seed trace profile verbose =
    wrap (fun () ->
        with_obs trace profile (fun () ->
            let q = Cq.Parser.query query in
            let i = load_instance inline file in
            let faults = parse_faults faults_spec fault_seed in
            if not (Faults.Plan.is_none faults) then
              Fmt.pr "faults: %a@." Faults.Plan.pp faults;
            with_job ~name:"gym"
              ~disk_faults:(parse_disk_faults disk_faults_spec disk_fault_seed)
              checkpoint resume kill_after (fun job ->
                let result, stats, width =
                  with_executor backend domains (fun executor ->
                      Mpc.Gym_ghd.run ~executor ~faults ?job ~p q i)
                in
                Fmt.pr "decomposition width: %d bag atoms@." width;
                Fmt.pr "result: %a@." Relational.Instance.pp result;
                Fmt.pr "stats:  %a@." Mpc.Stats.pp stats;
                if verbose then Fmt.pr "%a" Mpc.Stats.pp_rounds stats)))
  in
  let doc =
    "Run GYM (Yannakakis in MPC over a tree decomposition; handles cyclic \
     queries)."
  in
  Cmd.v (Cmd.info "gym" ~doc)
    Term.(
      const run $ query_arg $ instance_arg $ instance_file_arg $ p_arg
      $ backend_arg $ domains_arg $ faults_arg $ fault_seed_arg
      $ checkpoint_arg $ resume_arg $ kill_after_arg $ disk_faults_arg
      $ disk_fault_seed_arg $ trace_arg $ profile_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* triangle                                                            *)

let triangle_cmd =
  let algo_arg =
    let doc =
      "Multi-round plan: $(b,cascade) (two repartition joins; round 2 \
       carries the intermediate K = R ⋈ S) or $(b,skew) (heavy/light \
       split: light tuples through one-round HyperCube, heavy ones \
       through a two-round semi-join plan)."
    in
    Arg.(value & opt string "cascade" & info [ "algo" ] ~docv:"ALGO" ~doc)
  in
  let run algo inline file p seed backend domains faults_spec fault_seed
      checkpoint resume kill_after disk_faults_spec disk_fault_seed trace
      profile verbose =
    wrap (fun () ->
        with_obs trace profile (fun () ->
            let i = load_instance inline file in
            let faults = parse_faults faults_spec fault_seed in
            if not (Faults.Plan.is_none faults) then
              Fmt.pr "faults: %a@." Faults.Plan.pp faults;
            with_job ~name:"triangle"
              ~disk_faults:(parse_disk_faults disk_faults_spec disk_fault_seed)
              checkpoint resume kill_after (fun job ->
                let result, stats =
                  with_executor backend domains (fun executor ->
                      match algo with
                      | "cascade" ->
                        Mpc.Multi_round.cascade_triangle ~seed ~executor
                          ~faults ?job ~p i
                      | "skew" ->
                        let result, stats, heavy =
                          Mpc.Multi_round.skew_resilient_triangle ~seed
                            ~executor ~faults ?job ~p i
                        in
                        Fmt.pr "heavy hitters: %d@." heavy;
                        (result, stats)
                      | other ->
                        invalid_arg
                          (Fmt.str "unknown algo %S (cascade or skew)" other))
                in
                Fmt.pr "result: %a@." Relational.Instance.pp result;
                Fmt.pr "stats:  %a@." Mpc.Stats.pp stats;
                if verbose then Fmt.pr "%a" Mpc.Stats.pp_rounds stats)))
  in
  let doc =
    "Run a multi-round triangle plan (H(x,y,z) <- R(x,y), S(y,z), T(z,x)) \
     over an instance with relations R, S and T."
  in
  Cmd.v (Cmd.info "triangle" ~doc)
    Term.(
      const run $ algo_arg $ instance_arg $ instance_file_arg $ p_arg
      $ seed_arg $ backend_arg $ domains_arg $ faults_arg $ fault_seed_arg
      $ checkpoint_arg $ resume_arg $ kill_after_arg $ disk_faults_arg
      $ disk_fault_seed_arg $ trace_arg $ profile_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* calm                                                                *)

let calm_cmd =
  let max_transitions_arg =
    let doc =
      "Transition budget for each run before it is abandoned with a \
       Did_not_quiesce diagnostic. The default (200000) is the \
       Scheduler.drain default; raise it for large instances, lower it to \
       catch divergence early."
    in
    Arg.(value & opt int 200_000 & info [ "max-transitions" ] ~docv:"N" ~doc)
  in
  let run query inline file p max_transitions faults_spec fault_seed =
    wrap (fun () ->
        let q = Cq.Parser.query query in
        let i = load_instance inline file in
        let expected = Cq.Eval.eval q i in
        let program =
          Transducer.Programs.monotone_broadcast ~name:"calm"
            ~eval:(Cq.Eval.eval q)
        in
        let make dist = Transducer.Network.create program dist in
        let dist = Transducer.Horizontal.round_robin ~p i in
        let adversary =
          match parse_faults faults_spec fault_seed with
          | plan when Faults.Plan.is_none plan ->
            Transducer.Scheduler.adversary fault_seed
          | plan -> Transducer.Scheduler.Adversary plan
        in
        let schedules = Transducer.Calm.default_schedules @ [ adversary ] in
        let ok = ref true in
        List.iter
          (fun schedule ->
            let net = make dist in
            let got = Transducer.Scheduler.drain ~schedule ~max_transitions net in
            let agrees = Relational.Instance.equal got expected in
            if not agrees then ok := false;
            Fmt.pr "%-14s %s (%d facts)@."
              (Transducer.Calm.schedule_name schedule)
              (if agrees then "agrees" else "DIVERGES")
              (Relational.Instance.cardinal got))
          schedules;
        (match
           Transducer.Calm.coordination_free ~make ~expected
             (Transducer.Horizontal.full_replication ~p i)
         with
        | Ok () ->
          Fmt.pr "coordination-free: silent run on the ideal distribution \
                  computes the query@."
        | Error f ->
          Fmt.pr "flagged: requires coordination (%a)@."
            Transducer.Calm.pp_failure f);
        if not !ok then
          invalid_arg "some schedule diverged from the expected output")
  in
  let doc =
    "Run a broadcasting transducer network for a query under every schedule \
     — random, FIFO, LIFO and the duplicating/reordering delivery adversary \
     — and check they agree (the CALM eventual-consistency property)."
  in
  Cmd.v (Cmd.info "calm" ~doc)
    Term.(
      const run $ query_arg $ instance_arg $ instance_file_arg $ p_arg
      $ max_transitions_arg $ faults_arg $ fault_seed_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let analyze_cmd =
  let run query =
    wrap (fun () ->
        let q = Cq.Parser.query query in
        Fmt.pr "query:        %a@." Cq.Ast.pp q;
        Fmt.pr "full:         %b@." (Cq.Ast.is_full q);
        Fmt.pr "self-join:    %b@." (Cq.Ast.has_self_join q);
        if Cq.Ast.is_positive q then begin
          Fmt.pr "acyclic:      %b@." (Cq.Hypergraph.is_acyclic q);
          Fmt.pr "tau*:         %.3f (skew-free load m/p^%.3f)@."
            (Cq.Hypergraph.tau_star q)
            (1.0 /. Cq.Hypergraph.tau_star q);
          Fmt.pr "rho*:         %.3f (AGM output bound m^rho*)@."
            (Cq.Hypergraph.rho_star q);
          let _, exps = Cq.Hypergraph.share_exponents q in
          Fmt.pr "share exps:   %a@."
            Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string float))
            exps;
          let d = Cq.Decomposition.min_fill q in
          Fmt.pr "decomposition width: %d@." (Cq.Decomposition.width d);
          let core = Cq.Containment.minimize q in
          if not (Cq.Ast.equal core q) then
            Fmt.pr "core (minimized): %a@." Cq.Ast.pp core
        end)
  in
  let doc = "Structural analysis of a query: acyclicity, tau*, rho*, shares." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ query_arg)

(* ------------------------------------------------------------------ *)
(* datalog                                                             *)

let datalog_cmd =
  let program_arg =
    let doc = "File with the Datalog program (one rule per line)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)
  in
  let output_arg =
    let doc = "Output relation to print (default: all IDB relations)." in
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"REL" ~doc)
  in
  let wf_arg =
    let doc = "Use the well-founded semantics (for non-stratifiable programs)." in
    Arg.(value & flag & info [ "well-founded"; "wf" ] ~doc)
  in
  let run program_file output wf inline file trace profile =
    wrap (fun () ->
        with_obs trace profile @@ fun () ->
        let program = Datalog.Program.parse (read_file program_file) in
        let i = load_instance inline file in
        Fmt.pr "idb: %s;  edb: %s@."
          (String.concat ", " (Datalog.Program.idb program))
          (String.concat ", " (Datalog.Program.edb program));
        Fmt.pr
          "semi-positive: %b;  connected: %b;  semi-connected (stratified): \
           %b;  stratifiable: %b@."
          (Datalog.Program.is_semi_positive program)
          (Datalog.Connectivity.program_connected program)
          (Datalog.Connectivity.is_semi_connected program)
          (Datalog.Stratify.is_stratifiable program);
        if wf then begin
          let result = Datalog.Wellfounded.well_founded program i in
          let pick j =
            match output with
            | Some rel ->
              Relational.Instance.filter (fun f -> Relational.Fact.rel f = rel) j
            | None -> j
          in
          Fmt.pr "true:      %a@." Relational.Instance.pp
            (pick
               (Relational.Instance.diff
                  result.Datalog.Wellfounded.true_facts i));
          Fmt.pr "undefined: %a@." Relational.Instance.pp
            (pick result.Datalog.Wellfounded.undefined)
        end
        else
          let result =
            match output with
            | Some rel -> Datalog.Eval.query program ~output:rel i
            | None ->
              let idb = Datalog.Program.idb program in
              Relational.Instance.filter
                (fun f -> List.mem (Relational.Fact.rel f) idb)
                (Datalog.Eval.run program i)
          in
          Fmt.pr "%a@." Relational.Instance.pp result)
  in
  let doc = "Evaluate a stratified (or well-founded) Datalog program." in
  Cmd.v (Cmd.info "datalog" ~doc)
    Term.(
      const run $ program_arg $ output_arg $ wf_arg $ instance_arg
      $ instance_file_arg $ trace_arg $ profile_arg)

(* ------------------------------------------------------------------ *)
(* classify                                                            *)

let classify_cmd =
  let samples_arg =
    let doc = "Number of random instance pairs to test against." in
    Arg.(value & opt int 100 & info [ "samples" ] ~docv:"N" ~doc)
  in
  let run query samples =
    wrap (fun () ->
        let q = Cq.Parser.query query in
        let schema = Cq.Ast.body_schema q in
        let rng = Random.State.make [| 2016 |] in
        let pairs =
          Datalog.Classify.random_pairs ~rng ~schema ~count:samples ~size:6
            ~domain:4
        in
        let cq = Datalog.Classify.of_cq q in
        let verdict = Datalog.Classify.classify cq ~pairs in
        Fmt.pr "empirical class (over %d random pairs): %s@." samples
          (Datalog.Classify.class_name verdict);
        match verdict.Datalog.Classify.monotone with
        | Ok () -> ()
        | Error r ->
          Fmt.pr "monotonicity refuted by:@.  I = %a@.  J = %a@.  lost = %a@."
            Relational.Instance.pp r.Datalog.Classify.base
            Relational.Instance.pp r.Datalog.Classify.extension
            Relational.Instance.pp r.Datalog.Classify.lost)
  in
  let doc =
    "Place a query in the monotonicity hierarchy M / Mdistinct / Mdisjoint \
     by randomized testing (Section 5.2)."
  in
  Cmd.v (Cmd.info "classify" ~doc) Term.(const run $ query_arg $ samples_arg)

(* ------------------------------------------------------------------ *)
(* serve / client                                                      *)

let socket_arg =
  let doc = "Unix-domain socket path for the query service." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "TCP port for the query service (0 picks a free one)." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "TCP host to bind or connect to." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let iname_arg =
  let doc = "Name of the served instance to address." in
  Arg.(value & opt string "main" & info [ "name"; "n" ] ~docv:"NAME" ~doc)

let serve_cmd =
  let max_sessions_arg =
    let doc = "Maximum concurrent client connections." in
    Arg.(value & opt int 1024 & info [ "max-sessions" ] ~docv:"N" ~doc)
  in
  let max_inflight_arg =
    let doc = "Maximum requests admitted into the engine at once; beyond \
               this the server fast-rejects instead of queueing." in
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let pool_size_arg =
    let doc = "Pooled engine handles (compiled indexes) per instance." in
    Arg.(value & opt int 4 & info [ "pool-size" ] ~docv:"N" ~doc)
  in
  let plan_cache_arg =
    let doc = "Prepared-plan cache capacity (LRU beyond it)." in
    Arg.(value & opt int 128 & info [ "plan-cache" ] ~docv:"N" ~doc)
  in
  let batch_arg =
    let doc = "Facts per streamed result batch." in
    Arg.(value & opt int 512 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let quota_arg =
    let doc = "Per-client token-bucket quota RATE:BURST (requests per \
               second, bucket size). Unset means unlimited." in
    Arg.(value & opt (some string) None & info [ "quota" ] ~docv:"RATE:BURST" ~doc)
  in
  let telemetry_arg =
    let doc =
      "Enable live telemetry: event tracing in a bounded ring plus sketch \
       statistics (skew reports), scrapeable over the wire with $(b,lamp \
       client metrics), $(b,lamp client trace) and $(b,lamp top)."
    in
    Arg.(value & flag & info [ "telemetry" ] ~doc)
  in
  (* Hardening knobs: 0 disables a timeout/watermark (the option's
     [None]), matching the library defaults where they differ. *)
  let read_timeout_arg =
    let doc = "Deadline (seconds) for a started request frame to finish \
               arriving — defeats slow-loris senders. 0 waits forever." in
    Arg.(value & opt float 30.0 & info [ "read-timeout" ] ~docv:"SECS" ~doc)
  in
  let idle_timeout_arg =
    let doc = "How long (seconds) a session may sit between requests \
               before it is hung up on. 0 (default) keeps idle sessions \
               forever." in
    Arg.(value & opt float 0.0 & info [ "idle-timeout" ] ~docv:"SECS" ~doc)
  in
  let reap_after_arg =
    let doc = "Stalled-connection reaper: shut down any session without \
               I/O activity for this long (seconds), including one stuck \
               mid-request. Must exceed the longest legitimate request. \
               0 (default) disables the reaper." in
    Arg.(value & opt float 0.0 & info [ "reap-after" ] ~docv:"SECS" ~doc)
  in
  let max_frame_arg =
    let doc = "Cap (bytes) on an incoming frame's payload, checked before \
               any allocation; a hostile length prefix is answered with a \
               typed error and a hangup." in
    Arg.(
      value
      & opt int Serve.Wire.max_frame
      & info [ "max-frame" ] ~docv:"BYTES" ~doc)
  in
  let dedup_window_arg =
    let doc = "Completed idempotency-keyed operations remembered per \
               client for replay, so a retried keyed request re-executes \
               nothing. 0 disables deduplication." in
    Arg.(value & opt int 1024 & info [ "dedup-window" ] ~docv:"N" ~doc)
  in
  let dedup_max_bytes_arg =
    let doc = "Cap (bytes) on one recorded dedup entry: a keyed \
               operation whose responses encode past this completes but \
               is not remembered (its retry re-executes), so large \
               result streams cannot pin server memory." in
    Arg.(
      value
      & opt int Serve.Server.default_config.dedup_max_bytes
      & info [ "dedup-max-bytes" ] ~docv:"BYTES" ~doc)
  in
  let shed_queue_arg =
    let doc = "Load-shedding watermark (microseconds) on the queue-wait \
               EWMA: past it, engine requests get a typed Overloaded \
               reply with a retry hint while health and scrapes still \
               serve. 0 (default) disables shedding." in
    Arg.(value & opt float 0.0 & info [ "shed-queue-us" ] ~docv:"USECS" ~doc)
  in
  let shed_retry_after_arg =
    let doc = "The retry_after_s hint (seconds) carried by shed replies." in
    Arg.(
      value & opt float 0.05 & info [ "shed-retry-after" ] ~docv:"SECS" ~doc)
  in
  let run socket port host inline file iname max_sessions max_inflight
      pool_size plan_cache batch quota strategy telemetry read_timeout
      idle_timeout reap_after max_frame dedup_window dedup_max_bytes
      shed_queue shed_retry_after backend domains trace profile =
    wrap (fun () ->
        with_obs trace profile (fun () ->
            if telemetry then begin
              (* A long-lived server must not grow its event buffer
                 without bound: keep the newest spans in a ring. *)
              Obs.Trace.set_mode (Ring 4096);
              Obs.Trace.set_enabled true;
              Obs.Sketch.set_enabled true
            end;
            let strategy = parse_strategy strategy in
            let quota =
              Option.map
                (fun s ->
                  match String.split_on_char ':' s with
                  | [ rate; burst ] ->
                    (float_of_string rate, float_of_string burst)
                  | _ -> invalid_arg "--quota expects RATE:BURST")
                quota
            in
            let opt_pos v = if v > 0.0 then Some v else None in
            let config =
              {
                Serve.Server.default_config with
                max_sessions;
                max_inflight;
                handle_pool = pool_size;
                plan_cache;
                batch;
                quota;
                strategy;
                read_timeout_s = opt_pos read_timeout;
                idle_timeout_s = opt_pos idle_timeout;
                reap_after_s = opt_pos reap_after;
                max_frame;
                dedup_window;
                dedup_max_bytes;
                shed_queue_us = opt_pos shed_queue;
                shed_retry_after_s = shed_retry_after;
              }
            in
            with_executor backend domains (fun executor ->
                let server = Serve.Server.create ~config ~executor () in
                let data =
                  match inline, file with
                  | None, None -> Relational.Instance.empty
                  | _ -> load_instance inline file
                in
                Serve.Server.add_instance server ~name:iname data;
                (match socket, port with
                | None, None ->
                  invalid_arg "give --socket=PATH and/or --port=PORT"
                | _ -> ());
                Option.iter
                  (fun path ->
                    Serve.Server.listen_unix server ~path;
                    Fmt.pr "listening on %s@." path)
                  socket;
                Option.iter
                  (fun port ->
                    let bound = Serve.Server.listen_tcp ~host server ~port in
                    Fmt.pr "listening on %s:%d@." host bound)
                  port;
                if telemetry then Fmt.pr "telemetry on (ring of 4096 events)@.";
                Fmt.pr "serving instance %S (%d facts); ^C stops@." iname
                  (Relational.Instance.cardinal data);
                (* The handler only flips a flag: Server.stop joins
                   threads and must not run inside a signal handler. *)
                let stop = Atomic.make false in
                let request_stop _ = Atomic.set stop true in
                ignore (Sys.signal Sys.sigint (Sys.Signal_handle request_stop));
                ignore (Sys.signal Sys.sigterm (Sys.Signal_handle request_stop));
                while not (Atomic.get stop) do
                  Thread.delay 0.2
                done;
                Fmt.pr "draining...@.";
                Serve.Server.stop server;
                Option.iter
                  (fun path ->
                    try Unix.unlink path with Unix.Unix_error _ -> ())
                  socket;
                Fmt.pr "stopped@.")))
  in
  let doc =
    "Serve conjunctive queries over a socket: prepared plans, pooled engine \
     handles, admission control and per-client quotas."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ instance_arg
      $ instance_file_arg $ iname_arg $ max_sessions_arg $ max_inflight_arg
      $ pool_size_arg $ plan_cache_arg $ batch_arg $ quota_arg
      $ plan_strategy_arg $ telemetry_arg $ read_timeout_arg
      $ idle_timeout_arg $ reap_after_arg $ max_frame_arg $ dedup_window_arg
      $ dedup_max_bytes_arg $ shed_queue_arg $ shed_retry_after_arg
      $ backend_arg $ domains_arg $ trace_arg $ profile_arg)

let timeout_arg =
  let doc =
    "Per-request deadline (seconds): an operation that has not finished \
     its round-trip by then fails with a typed timeout instead of \
     hanging. Unset waits forever."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS" ~doc)

let retries_arg =
  let doc =
    "Retry attempts after a connection loss, timeout or typed overload \
     reply, with seeded exponential backoff (an Overloaded retry hint \
     floors the sleep). Mutating operations carry idempotency keys, so a \
     retried ingest never double-counts."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

(* Wraps the connection named by --socket/--port in a {!Serve.Resilient}
   retry client, runs [f], closes. With --retries=0 (the default) it is
   a plain one-shot connection — failures surface immediately. *)
let with_client socket port host timeout retries f =
  if retries < 0 then invalid_arg "--retries < 0";
  let connect () =
    match socket, port with
    | Some path, None -> Serve.Client.connect_unix ?timeout_s:timeout ~path ()
    | None, Some port ->
      Serve.Client.connect_tcp ?timeout_s:timeout ~host ~port ()
    | _ -> invalid_arg "give exactly one of --socket or --port"
  in
  let config =
    { Serve.Resilient.default_config with max_attempts = retries + 1 }
  in
  (* The client name keys the server's idempotency-replay window, so
     successive CLI invocations must not share a name. Resilient keys
     also carry a per-process nonce and the server digest-checks every
     replay, but a fresh name keeps invocations fully disjoint. *)
  let client = Printf.sprintf "lamp-cli.%d" (Unix.getpid ()) in
  let c = Serve.Resilient.create ~config ~client connect in
  Fun.protect ~finally:(fun () -> Serve.Resilient.close c) (fun () -> f c)

let mode_arg =
  let doc =
    "Evaluation mode: $(b,local) (direct evaluation), or the distributed \
     simulations $(b,hypercube), $(b,repartition), $(b,grid) (see --p)."
  in
  Arg.(value & opt string "local" & info [ "mode" ] ~docv:"MODE" ~doc)

let parse_mode mode p : Serve.Wire.mode =
  match mode with
  | "local" -> Local
  | "hypercube" -> Hypercube { p }
  | "repartition" -> Repartition { p }
  | "grid" -> Grid { p }
  | other ->
    invalid_arg
      (Fmt.str "unknown mode %S (local, hypercube, repartition, grid)" other)

let client_cmd =
  let health =
    let run socket port host timeout retries =
      wrap (fun () ->
          with_client socket port host timeout retries (fun c ->
              if Serve.Resilient.health c then Fmt.pr "healthy@."
              else invalid_arg "server reported unhealthy"))
    in
    Cmd.v
      (Cmd.info "health" ~doc:"Ping the service.")
      Term.(const run $ socket_arg $ port_arg $ host_arg $ timeout_arg $ retries_arg)
  in
  let stats =
    let run socket port host timeout retries =
      wrap (fun () ->
          with_client socket port host timeout retries (fun c ->
              let s = Serve.Resilient.stats c in
              Fmt.pr
                "sessions: %d (active requests %d, executor in-flight %d, %d \
                 workers)@."
                s.Serve.Wire.sessions s.active_requests s.executor_in_flight
                s.pool_workers;
              Fmt.pr "plan cache: %d plans, %d hits, %d misses@."
                s.plan_cache_size s.plan_cache_hits s.plan_cache_misses;
              List.iter
                (fun (name, in_use, idle) ->
                  Fmt.pr "handles[%s]: %d in use, %d idle@." name in_use idle)
                s.handle_pools;
              Fmt.pr "served: %d (%d rejected, %d throttled)@."
                s.requests_served s.rejected s.throttled;
              if s.uptime_s > 0.0 then Fmt.pr "uptime: %.1fs@." s.uptime_s))
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Print the server's counters and pool state.")
      Term.(const run $ socket_arg $ port_arg $ host_arg $ timeout_arg $ retries_arg)
  in
  let prepare =
    let run socket port host timeout retries iname query =
      wrap (fun () ->
          with_client socket port host timeout retries (fun c ->
              let p = Serve.Resilient.prepare c ~instance:iname ~query in
              Fmt.pr "plan %d (%d atoms)%s@." p.Serve.Client.id p.atoms
                (if p.cached then " [cached]" else "")))
    in
    Cmd.v
      (Cmd.info "prepare"
         ~doc:"Compile a query into the server's plan cache.")
      Term.(
        const run $ socket_arg $ port_arg $ host_arg $ timeout_arg
        $ retries_arg $ iname_arg $ query_arg)
  in
  let exec =
    let plan_id_arg =
      let doc = "Execute a previously prepared plan instead of query text." in
      Arg.(value & opt (some int) None & info [ "plan" ] ~docv:"ID" ~doc)
    in
    let run socket port host timeout retries iname mode p plan_id query =
      wrap (fun () ->
          with_client socket port host timeout retries (fun c ->
              let plan : Serve.Wire.plan_ref =
                match plan_id, query with
                | Some id, None -> Id id
                | None, Some q -> Adhoc q
                | _ -> invalid_arg "give either QUERY or --plan=ID"
              in
              let result, stats =
                Serve.Resilient.execute c ~instance:iname
                  ~mode:(parse_mode mode p) plan
              in
              Fmt.pr "%a@." Relational.Instance.pp result;
              Fmt.pr "(%d facts)@." (Relational.Instance.cardinal result);
              Option.iter (fun s -> Fmt.pr "stats: %a@." Mpc.Stats.pp s) stats))
    in
    let query_opt_arg =
      let doc = "The query text (or use --plan=ID)." in
      Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)
    in
    Cmd.v
      (Cmd.info "exec" ~doc:"Execute a query (ad hoc or prepared).")
      Term.(
        const run $ socket_arg $ port_arg $ host_arg $ timeout_arg
        $ retries_arg $ iname_arg $ mode_arg $ p_arg $ plan_id_arg
        $ query_opt_arg)
  in
  let ingest =
    let run socket port host timeout retries iname inline file =
      wrap (fun () ->
          with_client socket port host timeout retries (fun c ->
              let facts =
                Relational.Instance.facts (load_instance inline file)
              in
              let added = Serve.Resilient.ingest c ~instance:iname facts in
              Fmt.pr "%d new facts (of %d sent)@." added (List.length facts)))
    in
    Cmd.v
      (Cmd.info "ingest" ~doc:"Load facts into a served instance.")
      Term.(
        const run $ socket_arg $ port_arg $ host_arg $ timeout_arg
        $ retries_arg $ iname_arg $ instance_arg $ instance_file_arg)
  in
  let metrics =
    let run socket port host timeout retries =
      wrap (fun () ->
          with_client socket port host timeout retries (fun c ->
              print_string (Serve.Resilient.metrics c)))
    in
    Cmd.v
      (Cmd.info "metrics"
         ~doc:
           "Scrape the server's live metrics as OpenMetrics/Prometheus text.")
      Term.(const run $ socket_arg $ port_arg $ host_arg $ timeout_arg $ retries_arg)
  in
  let trace =
    let limit_arg =
      let doc = "Newest spans to fetch." in
      Arg.(value & opt int 64 & info [ "limit" ] ~docv:"N" ~doc)
    in
    let run socket port host timeout retries limit =
      wrap (fun () ->
          with_client socket port host timeout retries (fun c ->
              let spans = Serve.Resilient.trace_dump ~limit c in
              if spans = [] then
                Fmt.pr "no spans (is the server running --telemetry?)@."
              else
                List.iter
                  (fun (s : Serve.Wire.span_info) ->
                    Fmt.pr "%10.6fs %9.3fms  tid=%d  %s/%s@." s.sp_t
                      (s.sp_dur *. 1e3) s.sp_tid s.sp_cat s.sp_name)
                  spans))
    in
    Cmd.v
      (Cmd.info "trace"
         ~doc:"Fetch the server's most recent completed spans.")
      Term.(
        const run $ socket_arg $ port_arg $ host_arg $ timeout_arg
        $ retries_arg $ limit_arg)
  in
  let doc = "Talk to a running lamp serve instance." in
  Cmd.group (Cmd.info "client" ~doc)
    [ health; stats; prepare; exec; ingest; metrics; trace ]

(* ------------------------------------------------------------------ *)
(* chaos — the wire-fault proxy, standalone                             *)

(* PATH (any string with a '/'), bare PORT (loopback) or HOST:PORT. *)
let parse_sockaddr ~what s =
  if String.contains s '/' then Unix.ADDR_UNIX s
  else
    match int_of_string_opt s with
    | Some port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
    | None -> (
      match String.rindex_opt s ':' with
      | None ->
        invalid_arg (Fmt.str "%s: expected PATH, PORT or HOST:PORT" what)
      | Some i ->
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        (match int_of_string_opt port with
        | None -> invalid_arg (Fmt.str "%s: bad port %S" what port)
        | Some port ->
          let addr =
            try Unix.inet_addr_of_string host
            with Failure _ -> (
              try (Unix.gethostbyname host).h_addr_list.(0)
              with Not_found ->
                invalid_arg (Fmt.str "%s: unknown host %S" what host))
          in
          Unix.ADDR_INET (addr, port)))

let sockaddr_str = function
  | Unix.ADDR_UNIX path -> path
  | Unix.ADDR_INET (addr, port) ->
    Fmt.str "%s:%d" (Unix.string_of_inet_addr addr) port

let chaos_cmd =
  let listen_arg =
    let doc =
      "Address clients connect to: a Unix-socket PATH, a bare PORT \
       (loopback) or HOST:PORT. Port 0 binds an OS-picked port, printed \
       at startup."
    in
    Arg.(
      required
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let upstream_arg =
    let doc = "The real server's address (same forms as --listen)." in
    Arg.(
      required
      & opt (some string) None
      & info [ "upstream" ] ~docv:"ADDR" ~doc)
  in
  let net_faults_arg =
    let doc =
      "The fault plan: comma-separated key=value fields among $(b,refuse), \
       $(b,delay), $(b,reset), $(b,truncate), $(b,stall), $(b,trickle), \
       $(b,flip) (probabilities), $(b,delay_s), $(b,stall_s) (seconds) and \
       $(b,window)=BYTES; or the presets $(b,none) and $(b,chaos). Every \
       decision is a pure function of (seed, connection, direction), so a \
       run replays bit-identically under the same seed."
    in
    Arg.(value & opt string "chaos" & info [ "net-faults" ] ~docv:"SPEC" ~doc)
  in
  let net_seed_arg =
    let doc = "Seed of the fault plan." in
    Arg.(value & opt int 1 & info [ "net-seed" ] ~docv:"N" ~doc)
  in
  let run listen upstream faults seed =
    wrap (fun () ->
        let plan = Faults.Net.of_string ~seed faults in
        if Faults.Net.is_none plan then
          Fmt.epr "note: plan is 'none' — relaying transparently@.";
        let listen = parse_sockaddr ~what:"--listen" listen in
        let upstream = parse_sockaddr ~what:"--upstream" upstream in
        let proxy = Faults.Net.Proxy.start ~plan ~listen ~upstream () in
        Fmt.pr "chaos proxy: %a@." Faults.Net.pp plan;
        Fmt.pr "relaying %s -> %s; ^C stops@."
          (sockaddr_str (Faults.Net.Proxy.addr proxy))
          (sockaddr_str upstream);
        (* The handler only flips a flag: Proxy.stop joins threads and
           must not run inside a signal handler. *)
        let stop = Atomic.make false in
        let request_stop _ = Atomic.set stop true in
        ignore (Sys.signal Sys.sigint (Sys.Signal_handle request_stop));
        ignore (Sys.signal Sys.sigterm (Sys.Signal_handle request_stop));
        while not (Atomic.get stop) do
          Thread.delay 0.2
        done;
        Fmt.pr "stopping...@.";
        let conns = Faults.Net.Proxy.connections proxy in
        let injected = Faults.Net.Proxy.injected proxy in
        Faults.Net.Proxy.stop proxy;
        (match listen with
        | Unix.ADDR_UNIX path -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
        | _ -> ());
        Fmt.pr "%d connections relayed@." conns;
        if injected = [] then Fmt.pr "no faults injected@."
        else
          List.iter
            (fun (kind, n) -> Fmt.pr "  %-9s %d@." kind n)
            injected)
  in
  let doc =
    "Interpose a deterministic hostile network between a client and a \
     running $(b,lamp serve): seeded connection refusals, resets, \
     truncations, stalls, slow-loris trickle and byte flips, without \
     touching either end."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ listen_arg $ upstream_arg $ net_faults_arg $ net_seed_arg)

(* ------------------------------------------------------------------ *)
(* top — live view over the metrics op                                 *)

(* Successive scrapes, rendered Prometheus-style: rates and quantiles
   come from the delta between the two newest scrapes, exactly what a
   rate()/histogram_quantile() pair computes — the server only ever
   ships cumulative counters. *)

let top_find samples name =
  List.find_map
    (fun (n, _, v) -> if String.equal n name then Some v else None)
    samples

let top_value samples name = Option.value ~default:0.0 (top_find samples name)

(* The cumulative buckets of histogram [name], sorted by upper bound. *)
let top_buckets samples name =
  let bucket = name ^ "_bucket" in
  List.filter_map
    (fun (n, labels, v) ->
      if String.equal n bucket then
        Option.map
          (fun le ->
            ((if le = "+Inf" then infinity else float_of_string le), v))
          (List.assoc_opt "le" labels)
      else None)
    samples
  |> List.sort compare

(* histogram_quantile over the window: subtract the older scrape's
   cumulative buckets, then rank-interpolate. NaN when the window saw
   no observations. *)
let top_quantile ~newer ~older name q =
  let ob = top_buckets older name in
  let d =
    List.map
      (fun (le, v) ->
        (le, v -. Option.value ~default:0.0 (List.assoc_opt le ob)))
      (top_buckets newer name)
  in
  match List.rev d with
  | [] -> nan
  | (_, total) :: _ when total <= 0.0 -> nan
  | (_, total) :: _ ->
    let rank = q *. total in
    let rec walk lo lo_cum = function
      | [] -> nan
      | (le, cum) :: rest ->
        if cum >= rank && cum > 0.0 then
          if le = infinity then lo
          else if cum <= lo_cum then le
          else lo +. ((le -. lo) *. ((rank -. lo_cum) /. (cum -. lo_cum)))
        else walk le cum rest
    in
    walk 0.0 0.0 d

let top_cmd =
  let interval_arg =
    let doc = "Seconds between refreshes." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let count_arg =
    let doc = "Refreshes before exiting (0 = until interrupted)." in
    Arg.(value & opt int 0 & info [ "count" ] ~docv:"N" ~doc)
  in
  let render ~clear ~dt ~newer ~older (s : Serve.Wire.server_stats) =
    if clear then print_string "\027[H\027[2J";
    let rate name =
      (top_value newer name -. top_value older name) /. dt
    in
    let q name p = top_quantile ~newer ~older name p in
    let pq v = if Float.is_nan v then "-" else Fmt.str "%.0f" v in
    Fmt.pr "lamp top — uptime %.0fs, %d sessions, %d active, %d in-flight@."
      s.uptime_s s.sessions s.active_requests s.executor_in_flight;
    Fmt.pr "  qps      %8.1f   rejected/s %6.2f   throttled/s %6.2f@."
      (rate "lamp_serve_requests_total")
      (rate "lamp_serve_rejected_total")
      (rate "lamp_serve_throttled_total");
    let lookups = s.plan_cache_hits + s.plan_cache_misses in
    Fmt.pr "  plans    %8d   cache hit rate %s   pool in use %.0f@."
      s.plan_cache_size
      (if lookups = 0 then "-"
       else Fmt.str "%5.1f%%" (100.0 *. float_of_int s.plan_cache_hits /. float_of_int lookups))
      (top_value newer "lamp_serve_pool_in_use");
    let h name label =
      Fmt.pr "  %s  p50 %6sµs  p95 %6sµs  p99 %6sµs@." label
        (pq (q name 0.5)) (pq (q name 0.95)) (pq (q name 0.99))
    in
    h "lamp_serve_queue_wait_us" "queue wait";
    h "lamp_serve_request_us" "latency   ";
    (* Current skew report, if the server sketches. *)
    (match top_find newer "lamp_skew_round" with
    | None -> ()
    | Some round ->
      Fmt.pr
        "  skew [%s round %.0f]  est max load %.0f  threshold %.0f  (±%.0f)@."
        (Option.value ~default:"?"
           (List.find_map
              (fun (n, labels, _) ->
                if String.equal n "lamp_skew_top" then
                  List.assoc_opt "ctx" labels
                else None)
              newer))
        round
        (top_value newer "lamp_skew_est_max_load")
        (top_value newer "lamp_skew_threshold")
        (top_value newer "lamp_skew_error_bound");
      List.filter_map
        (fun (n, labels, v) ->
          if String.equal n "lamp_skew_top" then
            Option.map
              (fun r -> (int_of_string r, List.assoc_opt "key" labels, v))
              (List.assoc_opt "rank" labels)
          else None)
        newer
      |> List.sort compare
      |> List.iter (fun (rank, key, est) ->
             Fmt.pr "    #%d %-16s ~%.0f@." rank
               (Option.value ~default:"?" key)
               est))
  in
  let run socket port host timeout retries interval count =
    wrap (fun () ->
        if interval <= 0.0 then invalid_arg "--interval must be positive";
        with_client socket port host timeout retries (fun c ->
            let stop = Atomic.make false in
            ignore
              (Sys.signal Sys.sigint
                 (Sys.Signal_handle (fun _ -> Atomic.set stop true)));
            let prev = ref [] in
            let prev_t = ref nan in
            let i = ref 0 in
            while
              (count = 0 || !i < count) && not (Atomic.get stop)
            do
              incr i;
              let t = Unix.gettimeofday () in
              let samples =
                Obs.Export.parse_openmetrics (Serve.Resilient.metrics c)
              in
              let s = Serve.Resilient.stats c in
              (* First scrape has no window yet: rate over the uptime
                 (the lifetime average) rather than nothing. *)
              let dt =
                if Float.is_nan !prev_t then Float.max s.uptime_s interval
                else Float.max (t -. !prev_t) 1e-9
              in
              render ~clear:(count <> 1) ~dt ~newer:samples ~older:!prev s;
              prev := samples;
              prev_t := t;
              if count = 0 || !i < count then Thread.delay interval
            done))
  in
  let doc =
    "Live telemetry view of a running server: qps, queue-wait and latency \
     percentiles over the refresh window, cache and pool state, and the \
     current skew report. Scrapes the $(b,metrics) wire op; the server \
     should run with $(b,--telemetry)."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ timeout_arg
      $ retries_arg $ interval_arg $ count_arg)

(* ------------------------------------------------------------------ *)
(* fsck                                                                *)

let fsck_cmd =
  let dir_arg =
    let doc =
      "Checkpoint directory to scan (the --checkpoint=DIR of the runs)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let repair_arg =
    let doc =
      "Repair what can be repaired: sweep stale tmp litter, promote a good \
       previous generation over a damaged slot, prune a damaged previous \
       generation behind a good slot. A slot with no good generation at all \
       is only flagged — fsck never deletes the last copy of anything."
    in
    Arg.(value & flag & info [ "repair" ] ~doc)
  in
  let run dir repair =
    wrap (fun () ->
        if not (Sys.file_exists dir && Sys.is_directory dir) then
          invalid_arg (Fmt.str "no such directory %S" dir);
        let reports = Jobs.Store.fsck ~repair dir in
        if reports = [] then Fmt.pr "%s: no checkpoint files@." dir
        else
          List.iter (fun r -> Fmt.pr "%a@." Jobs.Store.pp_report r) reports;
        if not (Jobs.Store.healthy reports) then
          failwith
            (if repair then "unrepairable damage remains"
             else "damaged checkpoint files found (rerun with --repair)"))
  in
  let doc =
    "Scan a checkpoint directory: verify every slot's header, checksum, \
     generation and job identity, report per-file verdicts (and stale tmp \
     litter), optionally $(b,--repair). Exits non-zero while any damage is \
     unrepaired."
  in
  Cmd.v (Cmd.info "fsck" ~doc) Term.(const run $ dir_arg $ repair_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc =
    "logical aspects of massively parallel and distributed systems (PODS'16 \
     reproduction)"
  in
  Cmd.group
    (Cmd.info "lamp" ~version:"1.0.0" ~doc)
    [
      eval_cmd;
      pc_cmd;
      transfer_cmd;
      hypercube_cmd;
      gym_cmd;
      kst_cmd;
      triangle_cmd;
      fsck_cmd;
      calm_cmd;
      analyze_cmd;
      datalog_cmd;
      classify_cmd;
      serve_cmd;
      client_cmd;
      chaos_cmd;
      top_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
